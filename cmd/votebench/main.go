// votebench regenerates the rank-aggregation side of Table 1 (rows 4–5):
// Borda and maximin sketch space and accuracy across candidate counts and
// ε, against exact tallies — including the paper's headline separation
// that maximin heavy hitters cost Θ(ε⁻²) per candidate where Borda costs
// Θ(log ε⁻¹).
//
// Usage:
//
//	go run ./cmd/votebench               # default sweep
//	go run ./cmd/votebench -m 200000 -q 0.5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	l1hh "repro"
	"repro/internal/stats"
)

var (
	mFlag    = flag.Int("m", 100_000, "number of votes")
	qFlag    = flag.Float64("q", 0.6, "Mallows dispersion (0,1]")
	seedFlag = flag.Uint64("seed", 1, "base RNG seed")
)

func main() {
	flag.Parse()
	m := *mFlag

	fmt.Println("=== E4: ε-Borda — bits and score error vs n, ε (Mallows votes) ===")
	fmt.Println("n    eps     bits     bits/bound   max|err|/(m·n)   winner-ok")
	for _, n := range []int{5, 10, 20, 40} {
		for _, eps := range []float64{0.05, 0.01} {
			runBorda(n, eps, m)
		}
	}
	fmt.Println()

	fmt.Println("=== E5: ε-maximin — bits and score error vs n, ε (Mallows votes) ===")
	fmt.Println("n    eps     bits         bits/bound   max|err|/m   winner-ok")
	for _, n := range []int{5, 10, 20} {
		for _, eps := range []float64{0.1, 0.05} {
			runMaximin(n, eps, m)
		}
	}
	fmt.Println()

	fmt.Println("=== Separation: Borda vs maximin bits at n=10, m=", m, "===")
	fmt.Println("eps      Borda(bits)   maximin(bits)   ratio")
	for _, eps := range []float64{0.1, 0.05, 0.02} {
		b := buildBorda(10, eps, m)
		mm := buildMaximin(10, eps, m)
		fmt.Printf("%-7.3f  %11d  %14d  %6.1f\n",
			eps, b.ModelBits(), mm.ModelBits(),
			float64(mm.ModelBits())/float64(b.ModelBits()))
	}
}

func buildBorda(n int, eps float64, m int) *l1hh.Borda {
	b, err := l1hh.NewBorda(l1hh.VoteConfig{
		Candidates: n, Eps: eps, Delta: 0.1, StreamLength: uint64(m), Seed: *seedFlag,
	})
	must(err)
	g := l1hh.NewMallows(*seedFlag+2, l1hh.IdentityRanking(n), *qFlag)
	for i := 0; i < m; i++ {
		b.Insert(g.Next())
	}
	return b
}

func buildMaximin(n int, eps float64, m int) *l1hh.Maximin {
	mm, err := l1hh.NewMaximin(l1hh.VoteConfig{
		Candidates: n, Eps: eps, Delta: 0.1, StreamLength: uint64(m), Seed: *seedFlag,
	})
	must(err)
	g := l1hh.NewMallows(*seedFlag+2, l1hh.IdentityRanking(n), *qFlag)
	for i := 0; i < m; i++ {
		mm.Insert(g.Next())
	}
	return mm
}

func runBorda(n int, eps float64, m int) {
	b, err := l1hh.NewBorda(l1hh.VoteConfig{
		Candidates: n, Eps: eps, Delta: 0.1, StreamLength: uint64(m), Seed: *seedFlag,
	})
	must(err)
	ta := l1hh.NewVoteTally(n)
	g := l1hh.NewMallows(*seedFlag+2, l1hh.IdentityRanking(n), *qFlag)
	for i := 0; i < m; i++ {
		v := g.Next()
		b.Insert(v)
		ta.Add(v)
	}
	got := b.Scores()
	want := ta.BordaScores()
	var maxErr float64
	for c := 0; c < n; c++ {
		if e := math.Abs(got[c]-float64(want[c])) / (float64(m) * float64(n)); e > maxErr {
			maxErr = e
		}
	}
	cand, _ := b.Max()
	_, trueMax := ta.BordaWinner()
	ok := float64(trueMax)-float64(want[cand]) <= eps*float64(m)*float64(n)
	bound := stats.BordaUpperBits(eps, uint64(n), uint64(m))
	fmt.Printf("%-4d %-7.3f %7d  %10.2f  %14.5f   %v\n",
		n, eps, b.ModelBits(), float64(b.ModelBits())/bound, maxErr, ok)
}

func runMaximin(n int, eps float64, m int) {
	mm, err := l1hh.NewMaximin(l1hh.VoteConfig{
		Candidates: n, Eps: eps, Delta: 0.1, StreamLength: uint64(m), Seed: *seedFlag,
	})
	must(err)
	ta := l1hh.NewVoteTally(n)
	g := l1hh.NewMallows(*seedFlag+2, l1hh.IdentityRanking(n), *qFlag)
	for i := 0; i < m; i++ {
		v := g.Next()
		mm.Insert(v)
		ta.Add(v)
	}
	got := mm.Scores()
	want := ta.MaximinScores()
	var maxErr float64
	for c := 0; c < n; c++ {
		if e := math.Abs(got[c]-float64(want[c])) / float64(m); e > maxErr {
			maxErr = e
		}
	}
	cand, _ := mm.Max()
	_, trueMax := ta.MaximinWinner()
	ok := float64(trueMax)-float64(want[cand]) <= eps*float64(m)
	bound := stats.MaximinUpperBits(eps, uint64(n), uint64(m))
	fmt.Printf("%-4d %-7.3f %11d  %11.3f  %10.5f   %v\n",
		n, eps, mm.ModelBits(), float64(mm.ModelBits())/bound, maxErr, ok)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
