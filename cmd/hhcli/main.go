// hhcli finds the heavy hitters of a stream read from a file or stdin,
// one item per whitespace-separated token. Numeric tokens are used as ids
// directly; anything else is hashed (FNV-1a) into the universe, with the
// original spelling remembered for the report.
//
// It is built on the unified l1hh front door: flags become l1hh.New
// options, so the same binary runs the serial solver, the concurrent
// sharded engine (-shards), and sliding windows (-window /
// -window-duration) — the report then covers only the most recent
// traffic, and the summary line says how much the window actually
// covers versus what was requested and how much mass aged out (with
// -shards, skewed traffic can leave per-shard count windows covering
// less than the requested W; a warning fires below 90% coverage —
// DESIGN.md §8).
//
// Usage:
//
//	hhcli -eps 0.01 -phi 0.05 < access.log
//	hhcli -eps 0.001 -phi 0.01 -algo simple data.txt
//	hhcli -eps 0.02 -phi 0.1 -window 100000 data.txt       # last 100k tokens
//	hhcli -eps 0.01 -phi 0.05 -m 10000000 -shards 8 big.log
//
// The stream length is not known in advance, so the unknown-length solver
// (Theorem 7) runs unless -m is given (count windows need no -m; time
// windows use -m as the expected items per window).
//
// Related problems (-problem, DESIGN.md §14): borda and maximin
// aggregate rankings instead of items — each input line is one ballot,
// candidate ids most preferred first, separated by spaces or commas —
// and print the winner with every candidate's score estimate; minfreq
// and maxfreq read items as usual and print the frequency extreme with
// its ε·m error bar:
//
//	hhcli -problem borda -candidates 5 -eps 0.01 -phi 0.1 ballots.txt
//	hhcli -problem minfreq -eps 0.01 -universe 100 -m 100000 data.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	l1hh "repro"
	"repro/internal/obs"
	"repro/internal/stream"
)

var (
	epsFlag        = flag.Float64("eps", 0.01, "additive error ε")
	phiFlag        = flag.Float64("phi", 0.05, "heaviness threshold ϕ")
	deltaFlag      = flag.Float64("delta", 0.05, "failure probability δ")
	mFlag          = flag.Uint64("m", 0, "stream length if known (0 = unknown; with -window-duration: expected items per window)")
	algoFlag       = flag.String("algo", "optimal", "engine: optimal or simple (known m only)")
	pacedFlag      = flag.Int("paced", 0, "per-insert work budget (0 = amortized; known m only)")
	seedFlag       = flag.Uint64("seed", 1, "RNG seed")
	shardsFlag     = flag.Int("shards", -1, "hash-partition the stream across N concurrent solver shards (-1 = serial, 0 = GOMAXPROCS)")
	windowFlag     = flag.Uint64("window", 0, "count-based sliding window: report the heavy hitters of (at least) the last N tokens (0 = whole stream)")
	windowDurFlag  = flag.Duration("window-duration", 0, "time-based sliding window over arrival time; -m becomes the expected items per window")
	windowBktFlag  = flag.Int("window-buckets", 0, "window epoch granularity (0 = default 8)")
	timingsFlag    = flag.Bool("timings", false, "print a stage-latency summary to stderr after the report (with -shards: per-stage histograms)")
	universeFlag   = flag.Uint64("universe", 1<<62, "universe size; ids in [0, universe) — matters for -problem minfreq, where the answer covers the whole universe")
	problemFlag    = flag.String("problem", "hh", "problem to solve: hh (heavy hitters), borda, maximin (ballots, one per line), minfreq, maxfreq (DESIGN.md §14)")
	candidatesFlag = flag.Int("candidates", 0, "number of candidates for -problem borda|maximin; ballots are permutations of [0, candidates)")
)

// batchSize is how many ids hhcli hands to InsertBatch at once when a
// sharded engine is configured; serial engines insert one by one.
const batchSize = 8192

// parseProblem maps -problem onto the front door's Problem constants.
func parseProblem(name string) (l1hh.Problem, error) {
	switch name {
	case "hh", "heavy-hitters":
		return l1hh.HeavyHittersProblem, nil
	case "borda":
		return l1hh.BordaProblem, nil
	case "maximin":
		return l1hh.MaximinProblem, nil
	case "minfreq", "min-frequency":
		return l1hh.MinFrequencyProblem, nil
	case "maxfreq", "max-frequency":
		return l1hh.MaxFrequencyProblem, nil
	}
	return 0, fmt.Errorf("unknown -problem %q (want hh, borda, maximin, minfreq or maxfreq)", name)
}

// buildProblemOptions is buildOptions for a non-default -problem:
// exactly the flags in that problem's vocabulary. Strays the user set
// explicitly are refused by the front door's validation (the option is
// simply never forwarded here, so e.g. -shards with -problem borda
// fails only if passed — which validateStrays below turns into a flag
// error first).
func buildProblemOptions(problem l1hh.Problem) ([]l1hh.Option, error) {
	if err := validateStrays(problem); err != nil {
		return nil, err
	}
	opts := []l1hh.Option{
		l1hh.WithProblem(problem),
		l1hh.WithEps(*epsFlag),
		l1hh.WithDelta(*deltaFlag),
		l1hh.WithSeed(*seedFlag),
	}
	switch problem {
	case l1hh.BordaProblem, l1hh.MaximinProblem:
		if *candidatesFlag <= 0 {
			return nil, fmt.Errorf("-problem %s requires -candidates (ballots are permutations of [0, candidates))", problem)
		}
		opts = append(opts, l1hh.WithPhi(*phiFlag), l1hh.WithCandidates(*candidatesFlag))
	default:
		opts = append(opts, l1hh.WithUniverse(*universeFlag))
	}
	if *mFlag > 0 {
		opts = append(opts, l1hh.WithStreamLength(*mFlag))
	}
	return opts, nil
}

// validateStrays refuses explicitly-set flags outside the problem's
// vocabulary, so the error names the flag instead of surfacing as a
// front-door option rejection.
func validateStrays(problem l1hh.Problem) error {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, name := range []string{"shards", "algo", "paced", "window", "window-duration", "window-buckets", "timings"} {
		if set[name] {
			return fmt.Errorf("-%s does not apply to -problem %s: the problem engines are serial, unsharded and unwindowed", name, problem)
		}
	}
	voting := problem == l1hh.BordaProblem || problem == l1hh.MaximinProblem
	if voting && set["universe"] {
		return fmt.Errorf("-universe does not apply to -problem %s: ballots range over the candidates", problem)
	}
	if !voting && set["phi"] {
		return fmt.Errorf("-phi does not apply to -problem %s: the extremes problems have no heaviness threshold", problem)
	}
	if !voting && set["candidates"] {
		return fmt.Errorf("-candidates does not apply to -problem %s", problem)
	}
	return nil
}

// buildOptions translates the flags into the l1hh.New option set.
func buildOptions() ([]l1hh.Option, error) {
	algo := l1hh.AlgorithmOptimal
	switch *algoFlag {
	case "optimal":
	case "simple":
		algo = l1hh.AlgorithmSimple
	default:
		return nil, fmt.Errorf("unknown -algo %q", *algoFlag)
	}
	opts := []l1hh.Option{
		l1hh.WithEps(*epsFlag),
		l1hh.WithPhi(*phiFlag),
		l1hh.WithDelta(*deltaFlag),
		l1hh.WithUniverse(*universeFlag),
		l1hh.WithAlgorithm(algo),
		l1hh.WithSeed(*seedFlag),
	}
	if *mFlag > 0 {
		opts = append(opts, l1hh.WithStreamLength(*mFlag))
	}
	if *pacedFlag > 0 {
		opts = append(opts, l1hh.WithPacedBudget(*pacedFlag))
	}
	if *shardsFlag >= 0 {
		opts = append(opts, l1hh.WithShards(*shardsFlag))
	}
	switch {
	case *windowFlag > 0 && *windowDurFlag > 0:
		return nil, fmt.Errorf("-window and -window-duration are mutually exclusive")
	case *windowFlag > 0:
		opts = append(opts, l1hh.WithCountWindow(*windowFlag, *windowBktFlag))
	case *windowDurFlag > 0:
		opts = append(opts, l1hh.WithTimeWindow(*windowDurFlag, *windowBktFlag))
	}
	return opts, nil
}

func main() {
	flag.Parse()

	problem, err := parseProblem(*problemFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if problem != l1hh.HeavyHittersProblem {
		opts, err := buildProblemOptions(problem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		hh, err := l1hh.New(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		in := os.Stdin
		if flag.NArg() > 0 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			in = f
		}
		if err := runProblem(hh, in); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		hh.Close()
		return
	}
	if *candidatesFlag != 0 {
		fmt.Fprintln(os.Stderr, "-candidates only applies to the voting problems (-problem borda|maximin)")
		os.Exit(2)
	}

	opts, err := buildOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var clk *ingestClocks
	if *timingsFlag {
		clk = newIngestClocks()
		if *shardsFlag >= 0 {
			// Serial engines have no enqueue/apply stages; the observer
			// option would be (rightly) rejected without shards.
			opts = append(opts, l1hh.WithIngestObserver(clk.timings()))
		}
	}
	hh, err := l1hh.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	rd := stream.NewReader(in, 1<<20)
	ingestStart := time.Now()
	if err := feed(hh, rd); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if clk != nil {
		clk.ingestWall = time.Since(ingestStart)
	}
	if err := rd.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	summary := fmt.Sprintf("# %d items, sketch %d bits, ε=%.4g ϕ=%.4g",
		rd.Count(), hh.ModelBits(), hh.Eps(), hh.Phi())
	if win, ok := hh.(l1hh.Windower); ok {
		st := win.WindowStats()
		w, _, _ := win.Window()
		summary += windowSummary(st, w)
		if warn := coverageWarning(st, w); warn != "" {
			fmt.Fprintln(os.Stderr, warn)
		}
	}
	fmt.Println(summary)
	reportStart := time.Now()
	rep := hh.Report()
	if clk != nil {
		clk.reportWall = time.Since(reportStart)
	}
	for _, r := range rep {
		label := rd.Name(r.Item)
		if label == "" {
			label = strconv.FormatUint(r.Item, 10)
		}
		fmt.Printf("%-30s %12.0f\n", label, r.F)
	}
	if clk != nil {
		fmt.Fprint(os.Stderr, clk.summary(rd.Count()))
	}
	hh.Close()
}

// runProblem dispatches a non-default -problem run on the capability
// the engine asserts: Voter reads ballots, Extremes reads items.
func runProblem(hh l1hh.HeavyHitters, in io.Reader) error {
	if v, ok := hh.(l1hh.Voter); ok {
		return runVoting(v, hh, in)
	}
	return runExtremes(hh, in)
}

// runVoting reads one ballot per line — candidate ids most preferred
// first, separated by spaces or commas — and prints the winner plus
// every candidate's score estimate. Candidates in the (ε,ϕ)-List answer
// at the engine's threshold are starred (known stream length only).
func runVoting(v l1hh.Voter, hh l1hh.HeavyHitters, in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		fields := strings.FieldsFunc(sc.Text(), func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) == 0 {
			continue
		}
		rk := make(l1hh.Ranking, len(fields))
		for i, f := range fields {
			id, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineno, err)
			}
			rk[i] = uint32(id)
		}
		if err := v.Vote(rk); err != nil {
			return fmt.Errorf("line %d: %v", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	winner, score := v.Winner()
	fmt.Printf("# %d ballots over %d candidates, sketch %d bits, ε=%.4g ϕ=%.4g\n",
		hh.Len(), v.Candidates(), hh.ModelBits(), hh.Eps(), hh.Phi())
	fmt.Printf("winner %d  score≈%.0f\n", winner, score)
	listed := map[int]bool{}
	if list := v.List(hh.Phi()); list != nil {
		for _, sc := range list {
			listed[sc.Candidate] = true
		}
	}
	for c, s := range v.Scores() {
		mark := " "
		if listed[c] {
			mark = "*"
		}
		fmt.Printf("%s %-10d %12.0f\n", mark, c, s)
	}
	return nil
}

// runExtremes streams items the same way the heavy hitters path does
// and prints the one frequency extreme the engine tracks with its ε·m
// error bar.
func runExtremes(hh l1hh.HeavyHitters, in io.Reader) error {
	rd := stream.NewReader(in, 1<<20)
	for {
		id, ok := rd.Next()
		if !ok {
			break
		}
		if err := hh.Insert(id); err != nil {
			return err
		}
	}
	if err := rd.Err(); err != nil {
		return err
	}
	ex := hh.(l1hh.Extremes)
	kind := "min-frequency"
	est, bound, err := ex.MinItem()
	if err == l1hh.ErrWrongExtreme {
		kind = "max-frequency"
		est, bound, err = ex.MaxItem()
	}
	if err != nil {
		return err
	}
	fmt.Printf("# %d items, sketch %d bits, ε=%.4g\n", hh.Len(), hh.ModelBits(), hh.Eps())
	label := rd.Name(est.Item)
	if label == "" {
		label = strconv.FormatUint(est.Item, 10)
	}
	fmt.Printf("%-13s %-30s %12.0f ±%.3g\n", kind, label, est.F, bound)
	return nil
}

// windowSummary renders the window clause of the summary line. Covered
// can land well under the requested W: per-shard count windows slide on
// per-shard arrivals, so skewed traffic shrinks the busiest shard's
// suffix (DESIGN.md §8). Both numbers are printed so the summary never
// overstates coverage.
func windowSummary(st l1hh.WindowStats, w uint64) string {
	if w > 0 {
		return fmt.Sprintf(", window covers %d of requested %d (%d aged out)",
			st.Covered, w, st.Retired)
	}
	return fmt.Sprintf(", window covers %d (%d aged out)", st.Covered, st.Retired)
}

// coverageWarning returns the below-90%-coverage warning, or "" when
// coverage is healthy. It only fires once the stream has filled the
// requested window: before that, low coverage just means a short
// stream, not skew.
func coverageWarning(st l1hh.WindowStats, w uint64) string {
	if w == 0 || st.Total < w || st.Covered >= w-w/10 {
		return ""
	}
	return fmt.Sprintf(
		"hhcli: window coverage %d is below 90%% of the requested %d (per-shard coverage %d–%d); skewed traffic shrinks per-shard count windows — see DESIGN.md §8",
		st.Covered, w, st.CoveredMin, st.CoveredMax)
}

// ingestClocks collects the -timings data: wall clocks for the ingest
// and report phases, and (with -shards) the engine's per-stage
// histograms fed through l1hh.WithIngestObserver.
type ingestClocks struct {
	enqueueWait *obs.Histogram
	batchApply  *obs.Histogram
	ingestWall  time.Duration
	reportWall  time.Duration
}

func newIngestClocks() *ingestClocks {
	reg := obs.NewRegistry()
	return &ingestClocks{
		enqueueWait: reg.Histogram("enqueue_wait", "", nil, obs.DurationBuckets),
		batchApply:  reg.Histogram("batch_apply", "", nil, obs.DurationBuckets),
	}
}

func (c *ingestClocks) timings() l1hh.IngestTimings {
	return l1hh.IngestTimings{
		EnqueueWait: c.enqueueWait.ObserveDuration,
		BatchApply:  c.batchApply.ObserveDuration,
	}
}

// summary renders the stderr timing report. Stage quantiles are bucket
// upper bounds (the histograms trade exactness for a lock-free hot
// path), so they are labeled ≤.
func (c *ingestClocks) summary(items uint64) string {
	rate := ""
	if s := c.ingestWall.Seconds(); s > 0 {
		rate = fmt.Sprintf(" (%.3g items/s)", float64(items)/s)
	}
	out := fmt.Sprintf("# timings: ingest %s%s, report %s\n",
		c.ingestWall.Round(time.Microsecond), rate, c.reportWall.Round(time.Microsecond))
	for _, st := range []struct {
		name string
		h    *obs.Histogram
	}{{"enqueue_wait", c.enqueueWait}, {"batch_apply", c.batchApply}} {
		n := st.h.Count()
		if n == 0 {
			continue
		}
		q := func(p float64) time.Duration {
			return time.Duration(st.h.Quantile(p) * float64(time.Second)).Round(time.Nanosecond)
		}
		out += fmt.Sprintf("# timings: %-12s n=%-8d p50≤%-10s p99≤%-10s max≤%s\n",
			st.name, n, q(0.5), q(0.99), q(1))
	}
	return out
}

// feed streams the reader's ids into the solver, batching when the
// engine ingests concurrently (the batch path is the sharded hot path;
// serial solvers take the plain Insert loop).
func feed(hh l1hh.HeavyHitters, rd *stream.Reader) error {
	if _, ok := hh.(l1hh.Sharder); !ok {
		for {
			id, ok := rd.Next()
			if !ok {
				return nil
			}
			if err := hh.Insert(id); err != nil {
				return err
			}
		}
	}
	batch := make([]l1hh.Item, 0, batchSize)
	for {
		id, ok := rd.Next()
		if !ok {
			break
		}
		batch = append(batch, id)
		if len(batch) == cap(batch) {
			if err := hh.InsertBatch(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := hh.InsertBatch(batch); err != nil {
		return err
	}
	// A sharded report is a barrier, but flush explicitly so rd.Count()
	// and the report are taken against the same drained state.
	if f, ok := hh.(l1hh.Flusher); ok {
		f.Flush()
	}
	return nil
}
