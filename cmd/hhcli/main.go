// hhcli finds the heavy hitters of a stream read from a file or stdin,
// one item per whitespace-separated token. Numeric tokens are used as ids
// directly; anything else is hashed (FNV-1a) into the universe, with the
// original spelling remembered for the report.
//
// Usage:
//
//	hhcli -eps 0.01 -phi 0.05 < access.log
//	hhcli -eps 0.001 -phi 0.01 -algo simple data.txt
//
// The stream length is not known in advance, so the unknown-length solver
// (Theorem 7) runs unless -m is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	l1hh "repro"
	"repro/internal/stream"
)

var (
	epsFlag   = flag.Float64("eps", 0.01, "additive error ε")
	phiFlag   = flag.Float64("phi", 0.05, "heaviness threshold ϕ")
	deltaFlag = flag.Float64("delta", 0.05, "failure probability δ")
	mFlag     = flag.Uint64("m", 0, "stream length if known (0 = unknown)")
	algoFlag  = flag.String("algo", "optimal", "engine: optimal or simple (known m only)")
	pacedFlag = flag.Int("paced", 0, "per-insert work budget (0 = amortized; known m only)")
	seedFlag  = flag.Uint64("seed", 1, "RNG seed")
)

func main() {
	flag.Parse()

	algo := l1hh.AlgorithmOptimal
	if *algoFlag == "simple" {
		algo = l1hh.AlgorithmSimple
	}
	hh, err := l1hh.NewListHeavyHitters(l1hh.Config{
		Eps: *epsFlag, Phi: *phiFlag, Delta: *deltaFlag,
		StreamLength: *mFlag, Universe: 1 << 62,
		Algorithm: algo, PacedBudget: *pacedFlag, Seed: *seedFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	rd := stream.NewReader(in, 1<<20)
	for {
		id, ok := rd.Next()
		if !ok {
			break
		}
		hh.Insert(id)
	}
	if err := rd.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("# %d items, sketch %d bits, ε=%.4g ϕ=%.4g\n",
		rd.Count(), hh.ModelBits(), *epsFlag, *phiFlag)
	for _, r := range hh.Report() {
		label := rd.Name(r.Item)
		if label == "" {
			label = strconv.FormatUint(r.Item, 10)
		}
		fmt.Printf("%-30s %12.0f\n", label, r.F)
	}
}
