package main

import (
	"strings"
	"testing"
	"time"

	l1hh "repro"
)

// TestCoverageWarning pins when the <90% window-coverage warning fires:
// only after the stream has filled the requested window, and only when
// the covered mass falls below 90% of it.
func TestCoverageWarning(t *testing.T) {
	const w = 10_000
	for _, tc := range []struct {
		name string
		st   l1hh.WindowStats
		warn bool
	}{
		{"healthy full coverage",
			l1hh.WindowStats{Total: 50_000, Covered: w, CoveredMin: 2400, CoveredMax: 2600}, false},
		{"exactly at the 90% threshold",
			l1hh.WindowStats{Total: 50_000, Covered: w - w/10, CoveredMin: 2000, CoveredMax: 2500}, false},
		{"one item under the threshold",
			l1hh.WindowStats{Total: 50_000, Covered: w - w/10 - 1, CoveredMin: 100, CoveredMax: 4000}, true},
		{"severe skew deflation",
			l1hh.WindowStats{Total: 200_000, Covered: 4_000, CoveredMin: 10, CoveredMax: 3500}, true},
		{"short stream never warns",
			l1hh.WindowStats{Total: w - 1, Covered: w - 1, CoveredMin: 0, CoveredMax: 0}, false},
		{"empty stream never warns",
			l1hh.WindowStats{}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			warn := coverageWarning(tc.st, w)
			if got := warn != ""; got != tc.warn {
				t.Fatalf("coverageWarning(%+v, %d) = %q, want warn=%v", tc.st, w, warn, tc.warn)
			}
			if tc.warn {
				for _, frag := range []string{"90%", "DESIGN.md"} {
					if !strings.Contains(warn, frag) {
						t.Fatalf("warning %q lacks %q", warn, frag)
					}
				}
			}
		})
	}

	// A time window (w == 0) has no requested count to fall short of.
	if warn := coverageWarning(l1hh.WindowStats{Total: 1 << 20, Covered: 1}, 0); warn != "" {
		t.Fatalf("time window warned: %q", warn)
	}
}

// TestWindowSummary pins the two summary shapes (count vs time window).
func TestWindowSummary(t *testing.T) {
	st := l1hh.WindowStats{Covered: 950, Retired: 4050}
	if got := windowSummary(st, 1000); got != ", window covers 950 of requested 1000 (4050 aged out)" {
		t.Fatalf("count summary %q", got)
	}
	if got := windowSummary(st, 0); got != ", window covers 950 (4050 aged out)" {
		t.Fatalf("time summary %q", got)
	}
}

// TestTimingsSummary drives a sharded engine with the -timings clocks
// installed and checks the stderr report includes live stage lines.
func TestTimingsSummary(t *testing.T) {
	clk := newIngestClocks()
	hh, err := l1hh.New(l1hh.WithEps(0.02), l1hh.WithPhi(0.1),
		l1hh.WithStreamLength(50_000), l1hh.WithShards(2),
		l1hh.WithIngestObserver(clk.timings()))
	if err != nil {
		t.Fatal(err)
	}
	defer hh.Close()
	start := time.Now()
	if err := hh.InsertBatch(l1hh.Generate(l1hh.NewZipfStream(3, 1<<16, 1.2), 50_000)); err != nil {
		t.Fatal(err)
	}
	hh.(l1hh.Flusher).Flush()
	clk.ingestWall = time.Since(start)

	out := clk.summary(50_000)
	for _, frag := range []string{"# timings: ingest", "items/s", "enqueue_wait", "batch_apply", "p99"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("timings summary lacks %q:\n%s", frag, out)
		}
	}
	if clk.enqueueWait.Count() == 0 || clk.batchApply.Count() == 0 {
		t.Fatalf("stage histograms empty: waits=%d applies=%d",
			clk.enqueueWait.Count(), clk.batchApply.Count())
	}
}

// TestTimingsSummaryIdleStages: a serial run (no observer) must not
// print empty stage lines.
func TestTimingsSummaryIdleStages(t *testing.T) {
	clk := newIngestClocks()
	clk.ingestWall = 5 * time.Millisecond
	out := clk.summary(1000)
	if strings.Contains(out, "enqueue_wait") || strings.Contains(out, "batch_apply") {
		t.Fatalf("idle stages printed:\n%s", out)
	}
	if !strings.Contains(out, "# timings: ingest") {
		t.Fatalf("missing wall-clock line:\n%s", out)
	}
}
