package l1hh

// problems.go — the problem-keyed builder table behind the unified
// front door. The paper's title promises heavy hitters *and Related
// Problems*; WithProblem selects which of them New builds, and this
// file maps each Problem to its validator (which options make sense),
// its builder (which engines back it), and its capability set (which
// interfaces the returned solver honestly satisfies):
//
//	HeavyHittersProblem  → HeavyHitters (+ Merger/Windower/… per options,
//	                       PointQuerier on known-length engines)
//	BordaProblem         → Voter; Merger when the stream length is known
//	                       (exact Borda counters are linear, so the tally
//	                       codec folds)
//	MaximinProblem       → Voter only (the maximin tally keeps a sampled
//	                       vote set or a pairwise matrix over *sampled*
//	                       votes; folding two independent samples would
//	                       double-count the sample rate, so the codec
//	                       does not fold and the engine is never Merger)
//	MinFrequencyProblem  → Extremes (MinItem)
//	MaxFrequencyProblem  → Extremes (MaxItem)
//
// Every problem inherits the rest of the stack for free: checkpoint
// container tags (7–10) restored by the universal Unmarshal, pool
// classification (known-length problem engines spill and revive through
// their marshal codecs; unknown-length ones are volatile), and the hhd
// routes built on the capability interfaces. DESIGN.md §14.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/merge"
	"repro/internal/minimum"
	"repro/internal/rng"
	"repro/internal/unknown"
	"repro/internal/voting"
	"repro/internal/wire"
)

// Problem selects which of the paper's problems New solves
// (WithProblem); the zero value is the (ε,ϕ)-heavy hitters problem the
// package always solved.
type Problem int

// The problems of the paper's "Related Problems" family, keyed by
// WithProblem. Each problem accepts its own option subset and exposes
// its own capability interfaces — see the package documentation's
// problem section.
const (
	// HeavyHittersProblem is the default (ε,ϕ)-heavy hitters problem
	// (Theorems 1–2, 7–8): item streams, the full option vocabulary
	// (shards, windows, pacing, sentinel), reports of every ϕ-heavy item.
	HeavyHittersProblem Problem = iota
	// BordaProblem tracks every candidate's Borda score over a stream of
	// ranking votes (Theorem 5). The engine satisfies Voter; with a known
	// stream length it is also serializable and Merger (Borda counters
	// are linear).
	BordaProblem
	// MaximinProblem tracks every candidate's maximin score over a
	// stream of ranking votes (Theorem 6). The engine satisfies Voter;
	// with a known stream length it is serializable, but never Merger —
	// the sampled-vote tally does not fold soundly.
	MaximinProblem
	// MinFrequencyProblem is the ε-Minimum problem (Algorithm 3,
	// Theorem 4): an item of approximately minimum frequency over a
	// small universe. The engine satisfies Extremes (MinItem).
	MinFrequencyProblem
	// MaxFrequencyProblem is the ε-Maximum problem (Theorem 3): the most
	// frequent item and its frequency within ε·m. The engine satisfies
	// Extremes (MaxItem).
	MaxFrequencyProblem
)

// String returns the problem's canonical name (the spelling the hhd and
// hhcli -problem flags accept).
func (p Problem) String() string {
	switch p {
	case HeavyHittersProblem:
		return "heavy-hitters"
	case BordaProblem:
		return "borda"
	case MaximinProblem:
		return "maximin"
	case MinFrequencyProblem:
		return "min-frequency"
	case MaxFrequencyProblem:
		return "max-frequency"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// ErrNotItems is returned by Insert and InsertBatch on voting engines:
// they ingest rankings through Voter.Vote, not items. Test with
// errors.Is.
var ErrNotItems = errors.New("l1hh: this solver ingests rankings, not items — assert Voter and use Vote")

// ErrNotRankings is the converse of ErrNotItems, returned by
// ranking-facing entry points (Pool.Vote) when the target engine
// ingests items: only the voting problems take ballots. Test with
// errors.Is.
var ErrNotRankings = errors.New("l1hh: this solver ingests items, not rankings — build it with WithProblem(BordaProblem) or WithProblem(MaximinProblem)")

// ErrWrongExtreme is returned by Extremes.MinItem on a
// MaxFrequencyProblem solver and by MaxItem on a MinFrequencyProblem
// solver: each engine tracks one end of the frequency range. Test with
// errors.Is.
var ErrWrongExtreme = errors.New("l1hh: this solver tracks the other frequency extreme")

// ErrEmptyStream is returned by Extremes queries before any item has
// been inserted. Test with errors.Is.
var ErrEmptyStream = errors.New("l1hh: no items inserted yet")

// Voter is the capability of the voting problems (BordaProblem,
// MaximinProblem): ranking ingest and score queries. Discovered by type
// assertion on the HeavyHitters New returns, like every capability.
// Voting engines reject Insert/InsertBatch with ErrNotItems; their
// Report maps the scored candidate list into ItemEstimates (candidate
// id as the item) so generic report plumbing still works.
type Voter interface {
	// Vote processes one ballot: a permutation of [0, Candidates()),
	// most preferred first. It returns ErrClosed after Close and an
	// error for malformed rankings; a nil error means the vote counted.
	Vote(r Ranking) error
	// Winner returns the current winner under the problem's rule and
	// its score estimate (±ε·m·n Borda, ±ε·m maximin, whp).
	Winner() (candidate int, score float64)
	// Scores returns every candidate's score estimate.
	Scores() []float64
	// List solves the (ε,ϕ)-List variant at threshold phi: all
	// candidates scoring ≥ ϕ·(maximum possible), none ≤ (ϕ−ε)·(…). Nil
	// when the stream length is unknown (Theorem 8 machinery answers
	// winner/score queries only).
	List(phi float64) []ScoredCandidate
	// Candidates returns the number of candidates n.
	Candidates() int
}

// Extremes is the capability of the frequency-extreme problems
// (MinFrequencyProblem, MaxFrequencyProblem). Exactly one of
// MinItem/MaxItem answers, matching the problem the engine was built
// for; the other returns ErrWrongExtreme — the assertion contract is
// "succeeds iff sound", and a min-tracking sketch has no sound maximum
// answer.
type Extremes interface {
	// MinItem returns an item of approximately minimum frequency with
	// its estimate and the error bar ε·m. ErrWrongExtreme on a
	// MaxFrequencyProblem engine; ErrEmptyStream before any insert.
	MinItem() (est ItemEstimate, bound float64, err error)
	// MaxItem returns an item of approximately maximum frequency with
	// its estimate and the error bar ε·m. ErrWrongExtreme on a
	// MinFrequencyProblem engine; ErrEmptyStream before any insert.
	MaxItem() (est ItemEstimate, bound float64, err error)
}

// PointQuerier is the capability of per-item frequency estimation with
// the paper's §3 additive ε·m bound. Implemented by the known-length
// heavy hitters engines, serial and sharded (hash partitioning puts all
// of an item's occurrences on one shard, so the owning shard's estimate
// is the global one); not by unknown-length solvers (staggered
// instances forget prefix mass) or windowed solvers (bucket residuals
// do not compose into a per-item bound).
type PointQuerier interface {
	// Estimate returns the frequency estimate for x over the whole
	// stream: within ε·m for ϕ-heavy items whp, an undercount for items
	// the table never tracked.
	Estimate(x Item) float64
}

// problemSpec is one row of the problem-keyed builder table: how to
// validate the option set and how to build the engine stack.
type problemSpec struct {
	validate func(*settings) error
	build    func(*settings) (HeavyHitters, error)
}

// problemSpecs is the builder table New and validateNew dispatch on,
// indexed by Problem. WithProblem bounds-checks against it, so lookups
// never miss.
var problemSpecs = [...]problemSpec{
	HeavyHittersProblem: {validate: (*settings).validateHeavyHitters, build: buildHeavyHittersProblem},
	BordaProblem:        {validate: (*settings).validateVoting, build: buildVotingProblem},
	MaximinProblem:      {validate: (*settings).validateVoting, build: buildVotingProblem},
	MinFrequencyProblem: {validate: (*settings).validateExtremes, build: buildExtremesProblem},
	MaxFrequencyProblem: {validate: (*settings).validateExtremes, build: buildExtremesProblem},
}

// votingOpts is the option vocabulary of the voting problems: the
// problem statement (ε, ϕ, δ, candidates), reproducibility (seed), and
// the known/unknown stream length switch. Everything else — shards,
// windows, pacing, universe, sentinel, observer — is heavy-hitters
// machinery with no sound meaning over ranking streams.
const votingOpts = optProblem | optEps | optPhi | optDelta | optStreamLength | optSeed | optCandidates

// validateVoting checks the option combination for BordaProblem and
// MaximinProblem.
func (st *settings) validateVoting() error {
	if !st.has(optEps) {
		return errors.New("l1hh: WithEps is required")
	}
	if !st.has(optPhi) {
		return errors.New("l1hh: WithPhi is required (the List threshold; Winner ignores it)")
	}
	if !st.has(optCandidates) {
		return fmt.Errorf("l1hh: %s needs WithCandidates", st.problem)
	}
	if st.set&^votingOpts != 0 {
		return fmt.Errorf("l1hh: %s supports WithEps, WithPhi, WithDelta, WithStreamLength, WithSeed and WithCandidates only — sharding, windows, pacing, universe and the sentinel are heavy-hitters machinery", st.problem)
	}
	if !(st.cfg.Eps > 0 && st.cfg.Eps < 1) {
		return fmt.Errorf("l1hh: eps = %v out of (0,1)", st.cfg.Eps)
	}
	if !(st.cfg.Phi > st.cfg.Eps && st.cfg.Phi <= 1) {
		return fmt.Errorf("l1hh: phi = %v out of (eps, 1]", st.cfg.Phi)
	}
	return nil
}

// extremesOpts is the option vocabulary of the frequency-extreme
// problems: the problem statement (ε, δ, universe), reproducibility
// (seed), and the stream length switch. No ϕ — an extremes solver has
// no heaviness threshold — and no candidates, shards, windows or
// pacing.
const extremesOpts = optProblem | optEps | optDelta | optStreamLength | optUniverse | optSeed

// validateExtremes checks the option combination for
// MinFrequencyProblem and MaxFrequencyProblem.
func (st *settings) validateExtremes() error {
	if !st.has(optEps) {
		return errors.New("l1hh: WithEps is required")
	}
	if st.has(optPhi) {
		return fmt.Errorf("l1hh: WithPhi does not apply to %s (an extremes solver has no heaviness threshold; Phi() reports 0)", st.problem)
	}
	if st.set&^extremesOpts != 0 {
		return fmt.Errorf("l1hh: %s supports WithEps, WithDelta, WithStreamLength, WithUniverse and WithSeed only — sharding, windows, pacing, candidates and the sentinel are heavy-hitters machinery", st.problem)
	}
	if !st.has(optUniverse) {
		st.cfg.Universe = 1 << 62
	}
	return nil
}

// errNotSerializable is the marshal closure of every unknown-length
// problem engine (same contract as the heavy hitters path).
func errNotSerializable() ([]byte, error) {
	return nil, errors.New("l1hh: unknown-length solvers are not serializable")
}

// voterBase adapts a voting sketch (known- or unknown-length, Borda or
// maximin) to HeavyHitters + Voter. Single-owner, like every non-sharded
// engine.
type voterBase struct {
	problem  Problem
	n        int
	eps, phi float64
	closed   bool

	vote    func(Ranking)
	scores  func() []float64
	max     func() (int, float64)
	list    func(float64) []ScoredCandidate // nil ⇒ unknown length, no List
	length  func() uint64
	bits    func() int64
	marshal func() ([]byte, error)
}

// Insert implements HeavyHitters by refusing: voting engines ingest
// rankings (ErrNotItems).
func (v *voterBase) Insert(x Item) error { return ErrNotItems }

// InsertBatch implements HeavyHitters by refusing (ErrNotItems).
func (v *voterBase) InsertBatch(items []Item) error { return ErrNotItems }

// Vote implements Voter: it validates the ranking against the candidate
// arity (the sketches treat a malformed ballot as caller error) and
// counts it.
func (v *voterBase) Vote(r Ranking) error {
	if v.closed {
		return ErrClosed
	}
	if err := r.Validate(v.n); err != nil {
		return fmt.Errorf("l1hh: invalid ranking: %w", err)
	}
	v.vote(r)
	return nil
}

// Winner implements Voter.
func (v *voterBase) Winner() (candidate int, score float64) { return v.max() }

// Scores implements Voter.
func (v *voterBase) Scores() []float64 { return v.scores() }

// List implements Voter; nil when the stream length is unknown.
func (v *voterBase) List(phi float64) []ScoredCandidate {
	if v.list == nil {
		return nil
	}
	return v.list(phi)
}

// Candidates implements Voter.
func (v *voterBase) Candidates() int { return v.n }

// Report maps the problem's scored answer into the generic ItemEstimate
// shape (candidate id as the item) so report plumbing built for heavy
// hitters — hhd's /report, the pool's Report — answers for voting
// tenants too: the List at the configured ϕ when the stream length is
// known, the winner alone otherwise.
func (v *voterBase) Report() []ItemEstimate {
	if v.list != nil {
		sc := v.list(v.phi)
		out := make([]ItemEstimate, len(sc))
		for i, c := range sc {
			out[i] = ItemEstimate{Item: uint64(c.Candidate), F: c.Score}
		}
		return out
	}
	if v.length() == 0 {
		return nil
	}
	c, s := v.max()
	return []ItemEstimate{{Item: uint64(c), F: s}}
}

// Len returns the number of votes counted so far.
func (v *voterBase) Len() uint64 { return v.length() }

// Eps returns the additive-error parameter ε.
func (v *voterBase) Eps() float64 { return v.eps }

// Phi returns the List threshold ϕ.
func (v *voterBase) Phi() float64 { return v.phi }

// Stats returns the unified operational snapshot.
func (v *voterBase) Stats() Stats {
	n := v.length()
	return Stats{Items: n, Len: n, Eps: v.eps, Phi: v.phi, Shards: 1, ModelBits: v.bits()}
}

// ModelBits reports the sketch size under the paper's accounting.
func (v *voterBase) ModelBits() int64 { return v.bits() }

// MarshalBinary checkpoints the engine (tag 7 or 8); unknown-length
// engines return an error.
func (v *voterBase) MarshalBinary() ([]byte, error) { return v.marshal() }

// Close stops ingest; queries and checkpoints keep working. Idempotent.
func (v *voterBase) Close() error {
	v.closed = true
	return nil
}

// bordaHH is the known-length Borda engine: voterBase plus the Merger
// capability (exact Borda counters are linear, so same-configuration
// sketches fold).
type bordaHH struct {
	voterBase
	sk *voting.BordaSketch
}

// CheckMerge implements Merger without mutating either solver.
func (b *bordaHH) CheckMerge(checkpoint []byte) error {
	_, err := b.decodePeer(checkpoint)
	return err
}

// Merge implements Merger: it folds a peer's tag-7 checkpoint into the
// live tally so Winner and Scores answer for the concatenated vote
// streams. Failure is atomic.
func (b *bordaHH) Merge(checkpoint []byte) error {
	peer, err := b.decodePeer(checkpoint)
	if err != nil {
		return err
	}
	return b.sk.Merge(peer)
}

// decodePeer decodes and compatibility-checks a peer checkpoint for
// merging, reporting kind and configuration mismatches as
// incompatibilities (ErrIncompatibleMerge) rather than decode errors.
func (b *bordaHH) decodePeer(checkpoint []byte) (*voting.BordaSketch, error) {
	if len(checkpoint) >= 1 && checkpoint[0] != tagBorda {
		return nil, merge.Incompatiblef("l1hh: can only fold a Borda checkpoint into a Borda solver")
	}
	phi, peer, err := decodeBordaFrame(checkpoint)
	if err != nil {
		return nil, err
	}
	if err := b.sk.CanMerge(peer); err != nil {
		return nil, merge.Incompatiblef("%v", err)
	}
	if phi != b.phi {
		return nil, merge.Incompatiblef("l1hh: cannot merge Borda solvers with different ϕ (%v vs %v)", b.phi, phi)
	}
	return peer, nil
}

// maximinHH is the known-length maximin engine: voterBase plus
// serialization. Deliberately not a Merger — see MaximinProblem.
type maximinHH struct {
	voterBase
	sk *voting.MaximinSketch
}

// newBordaHH wires the adapter over a Borda sketch.
func newBordaHH(sk *voting.BordaSketch, phi float64) *bordaHH {
	cfg := sk.Params()
	return &bordaHH{
		voterBase: voterBase{
			problem: BordaProblem, n: cfg.N, eps: cfg.Eps, phi: phi,
			vote: sk.Insert, scores: sk.Scores, max: sk.Max, list: sk.List,
			length: sk.Len, bits: sk.ModelBits,
			marshal: func() ([]byte, error) { return marshalVoterFrame(tagBorda, phi, sk) },
		},
		sk: sk,
	}
}

// newMaximinHH wires the adapter over a maximin sketch.
func newMaximinHH(sk *voting.MaximinSketch, phi float64) *maximinHH {
	cfg := sk.Params()
	return &maximinHH{
		voterBase: voterBase{
			problem: MaximinProblem, n: cfg.N, eps: cfg.Eps, phi: phi,
			vote: sk.Insert, scores: sk.Scores, max: sk.Max, list: sk.List,
			length: sk.Len, bits: sk.ModelBits,
			marshal: func() ([]byte, error) { return marshalVoterFrame(tagMaximin, phi, sk) },
		},
		sk: sk,
	}
}

// buildVotingProblem constructs the Borda or maximin engine for st:
// Theorem 5/6 sketches when the stream length is known, the Theorem 8
// staggering otherwise (winner/score queries only; not serializable).
func buildVotingProblem(st *settings) (HeavyHitters, error) {
	cfg := st.cfg
	n := st.candidates
	src := rng.New(cfg.Seed)
	if cfg.StreamLength == 0 {
		base := voterBase{
			problem: st.problem, n: n, eps: cfg.Eps, phi: cfg.Phi,
			marshal: errNotSerializable,
		}
		switch st.problem {
		case BordaProblem:
			u, err := unknown.NewBorda(src, n, cfg.Eps, cfg.Delta)
			if err != nil {
				return nil, err
			}
			base.vote, base.scores, base.max = u.Insert, u.Scores, u.Max
			base.length, base.bits = u.Len, u.ModelBits
		default:
			u, err := unknown.NewMaximin(src, n, cfg.Eps, cfg.Delta)
			if err != nil {
				return nil, err
			}
			base.vote, base.scores, base.max = u.Insert, u.Scores, u.Max
			base.length, base.bits = u.Len, u.ModelBits
		}
		return &base, nil
	}
	switch st.problem {
	case BordaProblem:
		sk, err := voting.NewBordaSketch(src, voting.BordaConfig{
			N: n, Eps: cfg.Eps, Delta: cfg.Delta, M: cfg.StreamLength,
		})
		if err != nil {
			return nil, err
		}
		return newBordaHH(sk, cfg.Phi), nil
	default:
		sk, err := voting.NewMaximinSketch(src, voting.MaximinConfig{
			N: n, Eps: cfg.Eps, Delta: cfg.Delta, M: cfg.StreamLength,
		})
		if err != nil {
			return nil, err
		}
		return newMaximinHH(sk, cfg.Phi), nil
	}
}

// extremesHH adapts a frequency-extreme solver (ε-Minimum or ε-Maximum,
// known- or unknown-length) to HeavyHitters + Extremes. Single-owner.
type extremesHH struct {
	problem  Problem
	eps      float64
	universe uint64
	// m is the configured stream length (0 when unknown): the sampler is
	// tuned for it, so mid-stream the honest error bar is ε·m, not
	// ε·len. See extreme.
	m      uint64
	closed bool

	insert  func(Item)
	result  func() (ItemEstimate, bool)
	length  func() uint64
	bits    func() int64
	marshal func() ([]byte, error)
}

// Insert processes one stream item. Items must lie in [0, Universe) —
// the ε-Minimum machinery indexes bit-vectors by item id, so the bound
// is enforced here rather than by a panic deeper down.
func (e *extremesHH) Insert(x Item) error {
	if e.closed {
		return ErrClosed
	}
	if x >= e.universe {
		return fmt.Errorf("l1hh: item %d outside the universe [0, %d)", x, e.universe)
	}
	e.insert(x)
	return nil
}

// InsertBatch processes a batch of items; on a bounds error the prefix
// before the offending item has been applied.
func (e *extremesHH) InsertBatch(items []Item) error {
	for _, x := range items {
		if err := e.Insert(x); err != nil {
			return err
		}
	}
	return nil
}

// MinItem implements Extremes.
func (e *extremesHH) MinItem() (ItemEstimate, float64, error) {
	if e.problem != MinFrequencyProblem {
		return ItemEstimate{}, 0, ErrWrongExtreme
	}
	return e.extreme()
}

// MaxItem implements Extremes.
func (e *extremesHH) MaxItem() (ItemEstimate, float64, error) {
	if e.problem != MaxFrequencyProblem {
		return ItemEstimate{}, 0, ErrWrongExtreme
	}
	return e.extreme()
}

func (e *extremesHH) extreme() (ItemEstimate, float64, error) {
	est, ok := e.result()
	if !ok {
		return ItemEstimate{}, 0, ErrEmptyStream
	}
	// A known-length sampler's error is bounded against the configured m
	// it was tuned for; quoting ε·len mid-stream would understate it.
	n := e.length()
	if e.m > n {
		n = e.m
	}
	return est, e.eps * float64(n), nil
}

// Report returns the single extreme as a one-element list (empty before
// any insert), so generic report plumbing answers for extremes engines.
func (e *extremesHH) Report() []ItemEstimate {
	if est, ok := e.result(); ok {
		return []ItemEstimate{est}
	}
	return nil
}

// Len returns the number of items inserted so far.
func (e *extremesHH) Len() uint64 { return e.length() }

// Eps returns the additive-error parameter ε.
func (e *extremesHH) Eps() float64 { return e.eps }

// Phi returns 0: extremes problems have no heaviness threshold.
func (e *extremesHH) Phi() float64 { return 0 }

// Stats returns the unified operational snapshot.
func (e *extremesHH) Stats() Stats {
	n := e.length()
	return Stats{Items: n, Len: n, Eps: e.eps, Shards: 1, ModelBits: e.bits()}
}

// ModelBits reports the sketch size under the paper's accounting.
func (e *extremesHH) ModelBits() int64 { return e.bits() }

// MarshalBinary checkpoints the engine (tag 9 or 10); unknown-length
// engines return an error.
func (e *extremesHH) MarshalBinary() ([]byte, error) { return e.marshal() }

// Close stops ingest; queries and checkpoints keep working. Idempotent.
func (e *extremesHH) Close() error {
	e.closed = true
	return nil
}

// newMinimumHH wires the adapter over a known-length ε-Minimum solver.
func newMinimumHH(a *minimum.Solver) *extremesHH {
	cfg := a.Params()
	return &extremesHH{
		problem: MinFrequencyProblem, eps: cfg.Eps, universe: cfg.N, m: cfg.M,
		insert: a.Insert,
		result: func() (ItemEstimate, bool) {
			if a.Len() == 0 {
				return ItemEstimate{}, false
			}
			res := a.Report()
			return ItemEstimate{Item: res.Item, F: res.F}, true
		},
		length: a.Len, bits: a.ModelBits,
		marshal: func() ([]byte, error) { return taggedMarshal(tagMinimum, a) },
	}
}

// newMaximumHH wires the adapter over a known-length ε-Maximum solver.
func newMaximumHH(a *core.Maximum) *extremesHH {
	cfg := a.Params()
	return &extremesHH{
		problem: MaxFrequencyProblem, eps: cfg.Eps, universe: cfg.N, m: cfg.M,
		insert: a.Insert,
		result: func() (ItemEstimate, bool) {
			item, freq, ok := a.Report()
			return ItemEstimate{Item: item, F: freq}, ok
		},
		length: a.Len, bits: a.ModelBits,
		marshal: func() ([]byte, error) { return taggedMarshal(tagMaximum, a) },
	}
}

// buildExtremesProblem constructs the ε-Minimum or ε-Maximum engine for
// st: Algorithm 3 / Theorem 3 when the stream length is known, the
// Theorem 7/8 staggering otherwise (not serializable).
func buildExtremesProblem(st *settings) (HeavyHitters, error) {
	cfg := st.cfg
	src := rng.New(cfg.Seed)
	if cfg.StreamLength == 0 {
		e := &extremesHH{
			problem: st.problem, eps: cfg.Eps, universe: cfg.Universe,
			marshal: errNotSerializable,
		}
		if st.problem == MinFrequencyProblem {
			u, err := unknown.NewMinimum(src, cfg.Eps, cfg.Delta, cfg.Universe)
			if err != nil {
				return nil, err
			}
			e.insert, e.length, e.bits = u.Insert, u.Len, u.ModelBits
			e.result = func() (ItemEstimate, bool) {
				if u.Len() == 0 {
					return ItemEstimate{}, false
				}
				res := u.Report()
				return ItemEstimate{Item: res.Item, F: res.F}, true
			}
			return e, nil
		}
		u, err := unknown.NewMaximum(src, cfg.Eps, cfg.Delta, cfg.Universe)
		if err != nil {
			return nil, err
		}
		e.insert, e.length, e.bits = u.Insert, u.Len, u.ModelBits
		e.result = func() (ItemEstimate, bool) {
			item, freq, ok := u.Report()
			return ItemEstimate{Item: item, F: freq}, ok
		}
		return e, nil
	}
	if st.problem == MinFrequencyProblem {
		a, err := minimum.New(src, minimum.Config{
			Eps: cfg.Eps, Delta: cfg.Delta, M: cfg.StreamLength, N: cfg.Universe,
		})
		if err != nil {
			return nil, err
		}
		return newMinimumHH(a), nil
	}
	a, err := core.NewMaximum(src, core.Config{
		Eps: cfg.Eps, Delta: cfg.Delta, M: cfg.StreamLength, N: cfg.Universe,
	})
	if err != nil {
		return nil, err
	}
	return newMaximumHH(a), nil
}

// marshalVoterFrame encodes a voting checkpoint: the container tag,
// then the List threshold ϕ (wrapper state the sketch codec does not
// carry) framing the sketch's own encoding.
func marshalVoterFrame(tag byte, phi float64, inner interface{ MarshalBinary() ([]byte, error) }) ([]byte, error) {
	blob, err := inner.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter()
	w.F64(phi)
	w.Blob(blob)
	return append([]byte{tag}, w.Bytes()...), nil
}

// decodeVoterFrame splits a tag 7/8 encoding into the ϕ threshold and
// the inner sketch blob.
func decodeVoterFrame(data []byte) (phi float64, blob []byte, err error) {
	r := wire.NewReader(data[1:])
	phi = r.F64()
	blob = r.Blob()
	if r.Err() != nil {
		return 0, nil, fmt.Errorf("l1hh: corrupt voting encoding: %w", r.Err())
	}
	if !r.Done() {
		return 0, nil, errors.New("l1hh: trailing bytes after voting encoding")
	}
	return phi, blob, nil
}

// decodeBordaFrame decodes a tag-7 checkpoint into its ϕ threshold and
// Borda sketch, cross-checking the frame's ϕ against the sketch's own
// parameters (a tampered frame must not restore an engine whose List
// threshold is out of range).
func decodeBordaFrame(data []byte) (float64, *voting.BordaSketch, error) {
	phi, blob, err := decodeVoterFrame(data)
	if err != nil {
		return 0, nil, err
	}
	sk := new(voting.BordaSketch)
	if err := sk.UnmarshalBinary(blob); err != nil {
		return 0, nil, err
	}
	if cfg := sk.Params(); !(phi > cfg.Eps && phi <= 1) {
		return 0, nil, fmt.Errorf("l1hh: corrupt voting encoding: phi = %v out of (eps, 1]", phi)
	}
	return phi, sk, nil
}

// unmarshalProblem restores a problem-engine checkpoint (tags 7–10)
// behind the HeavyHitters interface with the original capability set.
// Problem engines take no runtime tuning, so the caller has already
// rejected every option.
func unmarshalProblem(data []byte) (HeavyHitters, error) {
	switch data[0] {
	case tagBorda:
		phi, sk, err := decodeBordaFrame(data)
		if err != nil {
			return nil, err
		}
		return newBordaHH(sk, phi), nil
	case tagMaximin:
		phi, blob, err := decodeVoterFrame(data)
		if err != nil {
			return nil, err
		}
		sk := new(voting.MaximinSketch)
		if err := sk.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		if cfg := sk.Params(); !(phi > cfg.Eps && phi <= 1) {
			return nil, fmt.Errorf("l1hh: corrupt voting encoding: phi = %v out of (eps, 1]", phi)
		}
		return newMaximinHH(sk, phi), nil
	case tagMinimum:
		a := new(minimum.Solver)
		if err := a.UnmarshalBinary(data[1:]); err != nil {
			return nil, err
		}
		return newMinimumHH(a), nil
	case tagMaximum:
		a := new(core.Maximum)
		if err := a.UnmarshalBinary(data[1:]); err != nil {
			return nil, err
		}
		return newMaximumHH(a), nil
	default:
		return nil, errors.New("l1hh: unrecognized solver encoding")
	}
}
