package l1hh

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/merge"
	"repro/internal/shard"
	"repro/internal/window"
	"repro/internal/wire"
)

// WindowConfig configures a sliding-window heavy hitters solver: the
// problem parameters of Config plus the window geometry. Exactly one of
// Window and WindowDuration must be set.
type WindowConfig struct {
	Config
	// Window selects a count-based window: reports answer for (at
	// least) the last Window items. Config.StreamLength is ignored in
	// this mode — the per-bucket solvers are sized to the window.
	Window uint64
	// WindowDuration selects a time-based window: reports answer for
	// (at least) the items of the last WindowDuration of wall time.
	// Config.StreamLength must then be the expected number of items per
	// window, which sizes the per-bucket solvers (receiving more costs
	// space, never accuracy).
	WindowDuration time.Duration
	// WindowBuckets is the epoch granularity B: the report's covered
	// mass overshoots the window by at most one epoch (≤ ⌈Window/B⌉
	// items, or ≤ WindowDuration/B of time). 0 defaults to 8; choose
	// B ≥ 2ϕ/ε to keep the (ε,ϕ) boundary clean against the window
	// itself (DESIGN.md §8).
	WindowBuckets int
	// Clock overrides the window clock for time-based windows and
	// bucket metadata; nil means time.Now. It is not serialized:
	// restored solvers run on the real clock.
	Clock func() time.Time
}

// minWindowEps is the smallest ε a windowed solver accepts: 2⁻¹³ ≈
// 1.2·10⁻⁴. Bucket engines are rebuilt from checkpoint frames
// (UnmarshalWindowedListHeavyHitters feeds decoded parameters straight
// into the solver constructors), so the decode path must be able to
// bound the constructors' table allocations — a hostile frame with an
// absurdly small ε would otherwise demand gigabytes. The floor caps the
// per-bucket accelerated-counter tables at a few MB and is far below
// any ε a window-scale stream can support (DESIGN.md §8).
const minWindowEps = 1.0 / (1 << 13)

// windowEngineConfig derives the per-bucket solver Config: every bucket
// runs the same engine with the same seed (the fold rules require
// identical random choices), declared at the maximum mass one report can
// cover — the window plus one epoch of slack. It also range-checks the
// problem parameters (rejecting NaN), because both the constructor and
// the checkpoint decoder route through it.
func windowEngineConfig(cfg WindowConfig) (Config, error) {
	c := cfg.Config
	if !(c.Eps >= minWindowEps && c.Eps < 1) {
		return c, fmt.Errorf("l1hh: windowed solvers need ε in [2⁻¹³, 1), got %v", c.Eps)
	}
	if !(c.Phi > c.Eps && c.Phi <= 1) {
		return c, fmt.Errorf("l1hh: phi = %v out of (eps, 1]", c.Phi)
	}
	if c.Delta != 0 && !(c.Delta > 0 && c.Delta < 1) {
		return c, fmt.Errorf("l1hh: delta = %v out of (0,1)", c.Delta)
	}
	if cfg.Window > window.MaxLastN {
		// Also guards the slack ceil-division below against wraparound.
		return c, fmt.Errorf("l1hh: window %d exceeds the %d maximum", cfg.Window, uint64(window.MaxLastN))
	}
	b := cfg.WindowBuckets
	if b == 0 {
		b = window.DefaultBuckets
	}
	if b < 1 {
		return c, fmt.Errorf("l1hh: invalid window bucket count %d", b)
	}
	switch {
	case cfg.Window > 0:
		slack := (cfg.Window + uint64(b) - 1) / uint64(b)
		c.StreamLength = cfg.Window + slack
	case cfg.WindowDuration > 0:
		if c.StreamLength == 0 {
			return c, errors.New("l1hh: a duration window needs Config.StreamLength (expected items per window)")
		}
		slack := (c.StreamLength + uint64(b) - 1) / uint64(b)
		c.StreamLength += slack
	}
	return c, nil
}

// WindowStats describes what a windowed report answers for: the covered
// mass, the total and retired mass, and the bucket geometry. See
// window.Stats for field semantics.
type WindowStats = window.Stats

// WindowedListHeavyHitters solves (ε,ϕ)-heavy hitters over a sliding
// window: Report answers for (at least) the last Window items or the
// last WindowDuration of wall time, not the whole stream. The stream is
// chopped into epoch buckets, each ingested by a fresh solver with the
// same seed; expired buckets retire wholesale, and a report folds the
// live buckets with the distributed tier's state-merge rules, so it
// carries the serial solver's (ε,ϕ) guarantees at m = the covered mass
// (the window plus at most one epoch — DESIGN.md §8).
//
// Like ListHeavyHitters, it is not safe for concurrent use; set the
// window fields of ShardedConfig for concurrent windowed ingest.
type WindowedListHeavyHitters struct {
	w        *window.Window
	cfg      WindowConfig
	eps, phi float64
}

// NewWindowedListHeavyHitters returns a sliding-window solver for cfg.
// Only known-length engines back windows (buckets are folded via the
// merge tier), so Config.Algorithm must be AlgorithmOptimal or
// AlgorithmSimple; a duration window additionally needs
// Config.StreamLength as the expected per-window mass.
func NewWindowedListHeavyHitters(cfg WindowConfig) (*WindowedListHeavyHitters, error) {
	cfg.fill()
	ecfg, err := windowEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	factory := func() (shard.Engine, error) { return NewListHeavyHitters(ecfg) }
	restorer := func(blob []byte) (shard.Engine, error) { return UnmarshalListHeavyHitters(blob) }
	w, err := window.New(factory, restorer, window.Options{
		LastN:        cfg.Window,
		LastDuration: cfg.WindowDuration,
		Buckets:      cfg.WindowBuckets,
		Now:          cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	return &WindowedListHeavyHitters{w: w, cfg: cfg, eps: cfg.Eps, phi: cfg.Phi}, nil
}

// Insert processes one stream item in amortized O(1) time (a bucket
// rotation allocates a fresh solver every ⌈W/B⌉ items).
func (h *WindowedListHeavyHitters) Insert(x Item) { h.w.Insert(x) }

// Report returns the heavy hitters of the covered window, in
// decreasing-estimate order. With probability ≥ 1−δ every item whose
// window frequency is ≥ ϕ·W appears, no item with covered frequency
// ≤ (ϕ−ε)·M appears (M = Len(), the covered mass), and estimates are
// within ε·M of the covered frequency. If the internal bucket fold fails
// (which cannot happen for the solvers this package builds), it degrades
// to a per-bucket union whose estimates may undercount.
func (h *WindowedListHeavyHitters) Report() []ItemEstimate {
	rep, err := h.w.Report()
	if err != nil {
		return h.w.ReportUnion()
	}
	return rep
}

// Eps returns the additive-error parameter ε the solver was built with.
func (h *WindowedListHeavyHitters) Eps() float64 { return h.eps }

// Phi returns the heaviness threshold ϕ the solver was built with.
func (h *WindowedListHeavyHitters) Phi() float64 { return h.phi }

// Len returns the covered mass M — the stream length a Report answers
// for: at least min(Window, Total), at most one epoch more than the
// window.
func (h *WindowedListHeavyHitters) Len() uint64 { return h.w.Len() }

// Total returns the number of items ever inserted, including mass that
// has aged out of the window.
func (h *WindowedListHeavyHitters) Total() uint64 { return h.w.Total() }

// WindowStats describes the current coverage: covered/retired mass,
// live bucket count, and the age of the oldest covered item.
func (h *WindowedListHeavyHitters) WindowStats() WindowStats { return h.w.Stats() }

// ModelBits reports the summed size of the live bucket sketches under
// the paper's accounting: a B-bucket window honestly costs B+1 sketches.
func (h *WindowedListHeavyHitters) ModelBits() int64 { return h.w.ModelBits() }

// MarshalBinary serializes the window configuration and every live
// bucket's solver state; UnmarshalWindowedListHeavyHitters restores a
// solver that continues the window exactly where this one stopped.
func (h *WindowedListHeavyHitters) MarshalBinary() ([]byte, error) {
	blob, err := h.w.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter()
	w.F64(h.cfg.Eps)
	w.F64(h.cfg.Phi)
	w.F64(h.cfg.Delta)
	w.U64(h.cfg.StreamLength)
	w.U64(h.cfg.Universe)
	w.U64(uint64(h.cfg.Algorithm))
	w.U64(uint64(h.cfg.PacedBudget))
	w.U64(h.cfg.Seed)
	w.U64(h.cfg.Window)
	w.I64(int64(h.cfg.WindowDuration))
	w.U64(uint64(h.cfg.WindowBuckets))
	w.Blob(blob)
	return append([]byte{tagWindowed}, w.Bytes()...), nil
}

// UnmarshalWindowedListHeavyHitters reconstructs a solver serialized by
// WindowedListHeavyHitters.MarshalBinary. Time-based windows resume on
// the wall clock: buckets that aged out while the checkpoint sat on disk
// retire on the first operation.
func UnmarshalWindowedListHeavyHitters(data []byte) (*WindowedListHeavyHitters, error) {
	if len(data) < 1 || data[0] != tagWindowed {
		return nil, errors.New("l1hh: not a windowed solver encoding")
	}
	r := wire.NewReader(data[1:])
	var cfg WindowConfig
	cfg.Eps = r.F64()
	cfg.Phi = r.F64()
	cfg.Delta = r.F64()
	cfg.StreamLength = r.U64()
	cfg.Universe = r.U64()
	algo := r.U64()
	paced := r.U64()
	cfg.Seed = r.U64()
	cfg.Window = r.U64()
	cfg.WindowDuration = time.Duration(r.I64())
	cfg.WindowBuckets = int(r.U64())
	blob := r.Blob()
	if r.Err() != nil {
		return nil, fmt.Errorf("l1hh: corrupt windowed encoding: %w", r.Err())
	}
	if !r.Done() {
		return nil, errors.New("l1hh: trailing bytes after windowed encoding")
	}
	if algo > uint64(AlgorithmSimple) {
		return nil, fmt.Errorf("l1hh: unknown algorithm %d in windowed encoding", algo)
	}
	cfg.Algorithm = Algorithm(algo)
	cfg.PacedBudget = int(paced)
	ecfg, err := windowEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	factory := func() (shard.Engine, error) { return NewListHeavyHitters(ecfg) }
	restorer := func(b []byte) (shard.Engine, error) { return UnmarshalListHeavyHitters(b) }
	w, err := window.Restore(blob, factory, restorer, window.Options{})
	if err != nil {
		return nil, err
	}
	// The geometry is encoded twice: in this frame (it sizes the bucket
	// engines above) and in the window snapshot (it drives retirement).
	// A tampered blob could make them disagree — mis-sized engines and
	// lying metadata — so reject any mismatch.
	lastN, lastDur, buckets := w.Geometry()
	if lastN != cfg.Window || lastDur != cfg.WindowDuration ||
		(cfg.WindowBuckets != 0 && buckets != cfg.WindowBuckets) ||
		(cfg.WindowBuckets == 0 && buckets != window.DefaultBuckets) {
		return nil, errors.New("l1hh: window geometry mismatch between frame and snapshot")
	}
	return &WindowedListHeavyHitters{w: w, cfg: cfg, eps: cfg.Eps, phi: cfg.Phi}, nil
}

// MergeEngine implements the shard-layer merge contract by refusing:
// sliding-window states are not mergeable — two nodes' windows cover
// different wall-clock slices, so folding them answers no well-defined
// window (DESIGN.md §8).
func (h *WindowedListHeavyHitters) MergeEngine(other shard.Engine) error {
	return h.CheckMergeEngine(other)
}

// CheckMergeEngine implements the non-mutating half of the shard merge
// contract; it always refuses (see MergeEngine).
func (h *WindowedListHeavyHitters) CheckMergeEngine(other shard.Engine) error {
	return merge.Incompatiblef("l1hh: sliding-window states are not mergeable (DESIGN.md §8)")
}
