package l1hh

import (
	"time"

	"repro/internal/merge"
	"repro/internal/shard"
	"repro/internal/window"
	"repro/internal/wire"
)

// WindowConfig configures a sliding-window heavy hitters solver: the
// problem parameters of Config plus the window geometry. Exactly one of
// Window and WindowDuration must be set.
//
// Prefer New with WithCountWindow/WithTimeWindow — this struct remains
// the configuration of the deprecated constructor.
type WindowConfig struct {
	Config
	// Window selects a count-based window: reports answer for (at
	// least) the last Window items. Config.StreamLength is ignored in
	// this mode — the per-bucket solvers are sized to the window.
	Window uint64
	// WindowDuration selects a time-based window: reports answer for (at
	// least) the items of the last WindowDuration of wall time.
	// Config.StreamLength must then be the expected number of items per
	// window, which sizes the per-bucket solvers (receiving more costs
	// space, never accuracy).
	WindowDuration time.Duration
	// WindowBuckets is the epoch granularity B: the report's covered
	// mass overshoots the window by at most one epoch (≤ ⌈Window/B⌉
	// items, or ≤ WindowDuration/B of time). 0 defaults to 8; choose
	// B ≥ 2ϕ/ε to keep the (ε,ϕ) boundary clean against the window
	// itself (DESIGN.md §8).
	WindowBuckets int
	// Clock overrides the window clock for time-based windows and
	// bucket metadata; nil means time.Now. It is not serialized:
	// restored solvers run on the real clock unless Unmarshal is given
	// WithClock.
	Clock func() time.Time
}

// WindowStats describes what a windowed report answers for: the covered
// mass, the total and retired mass, and the bucket geometry. See
// window.Stats for field semantics.
type WindowStats = window.Stats

// WindowedListHeavyHitters solves (ε,ϕ)-heavy hitters over a sliding
// window: Report answers for (at least) the last Window items or the
// last WindowDuration of wall time, not the whole stream. The stream is
// chopped into epoch buckets, each ingested by a fresh solver with the
// same seed; expired buckets retire wholesale, and a report folds the
// live buckets with the distributed tier's state-merge rules, so it
// carries the serial solver's (ε,ϕ) guarantees at m = the covered mass
// (the window plus at most one epoch — DESIGN.md §8).
//
// It is the window decorator behind the unified front door; New returns
// it wrapped in the HeavyHitters interface. The type stays exported for
// the deprecated constructors and for checkpoint interchange.
//
// Like ListHeavyHitters, it is not safe for concurrent use; combine
// WithShards and a window option for concurrent windowed ingest.
type WindowedListHeavyHitters struct {
	w        *window.Window
	cfg      WindowConfig
	eps, phi float64
}

// NewWindowedListHeavyHitters returns a sliding-window solver for cfg.
// Only known-length engines back windows (buckets are folded via the
// merge tier), so Config.Algorithm must be AlgorithmOptimal or
// AlgorithmSimple; a duration window additionally needs
// Config.StreamLength as the expected per-window mass.
//
// Deprecated: use New with WithCountWindow or WithTimeWindow — for
// example New(WithEps(cfg.Eps), WithPhi(cfg.Phi), WithCountWindow(cfg.Window, cfg.WindowBuckets)).
func NewWindowedListHeavyHitters(cfg WindowConfig) (*WindowedListHeavyHitters, error) {
	return buildWindowed(cfg)
}

// Insert processes one stream item in amortized O(1) time (a bucket
// rotation allocates a fresh solver every ⌈W/B⌉ items).
func (h *WindowedListHeavyHitters) Insert(x Item) { h.w.Insert(x) }

// Report returns the heavy hitters of the covered window, in
// decreasing-estimate order. With probability ≥ 1−δ every item whose
// window frequency is ≥ ϕ·W appears, no item with covered frequency
// ≤ (ϕ−ε)·M appears (M = Len(), the covered mass), and estimates are
// within ε·M of the covered frequency. If the internal bucket fold fails
// (which cannot happen for the solvers this package builds), it degrades
// to a per-bucket union whose estimates may undercount.
func (h *WindowedListHeavyHitters) Report() []ItemEstimate {
	rep, err := h.w.Report()
	if err != nil {
		return h.w.ReportUnion()
	}
	return rep
}

// Eps returns the additive-error parameter ε the solver was built with.
func (h *WindowedListHeavyHitters) Eps() float64 { return h.eps }

// Phi returns the heaviness threshold ϕ the solver was built with.
func (h *WindowedListHeavyHitters) Phi() float64 { return h.phi }

// Len returns the covered mass M — the stream length a Report answers
// for: at least min(Window, Total), at most one epoch more than the
// window.
func (h *WindowedListHeavyHitters) Len() uint64 { return h.w.Len() }

// Total returns the number of items ever inserted, including mass that
// has aged out of the window.
func (h *WindowedListHeavyHitters) Total() uint64 { return h.w.Total() }

// Window returns the configured geometry: the count window W (0 for
// time windows), the duration D (0 for count windows), and the bucket
// granularity (defaults resolved).
func (h *WindowedListHeavyHitters) Window() (w uint64, d time.Duration, buckets int) {
	return h.w.Geometry()
}

// WindowStats describes the current coverage: covered/retired mass,
// live bucket count, and the age of the oldest covered item.
func (h *WindowedListHeavyHitters) WindowStats() WindowStats { return h.w.Stats() }

// Stats returns the unified operational snapshot (see Stats).
func (h *WindowedListHeavyHitters) Stats() Stats {
	st := h.WindowStats()
	return Stats{
		Items: st.Total,
		Len:   st.Covered,
		Eps:   h.eps, Phi: h.phi,
		Shards:    1,
		ModelBits: h.ModelBits(),
		Window:    &st,
	}
}

// ModelBits reports the summed size of the live bucket sketches under
// the paper's accounting: a B-bucket window honestly costs B+1 sketches.
func (h *WindowedListHeavyHitters) ModelBits() int64 { return h.w.ModelBits() }

// MarshalBinary serializes the window configuration and every live
// bucket's solver state; Unmarshal restores a solver that continues the
// window exactly where this one stopped.
func (h *WindowedListHeavyHitters) MarshalBinary() ([]byte, error) {
	blob, err := h.w.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter()
	w.F64(h.cfg.Eps)
	w.F64(h.cfg.Phi)
	w.F64(h.cfg.Delta)
	w.U64(h.cfg.StreamLength)
	w.U64(h.cfg.Universe)
	w.U64(uint64(h.cfg.Algorithm))
	w.U64(uint64(h.cfg.PacedBudget))
	w.U64(h.cfg.Seed)
	w.U64(h.cfg.Window)
	w.I64(int64(h.cfg.WindowDuration))
	w.U64(uint64(h.cfg.WindowBuckets))
	w.Blob(blob)
	return append([]byte{tagWindowed}, w.Bytes()...), nil
}

// UnmarshalWindowedListHeavyHitters reconstructs a solver serialized by
// WindowedListHeavyHitters.MarshalBinary. Time-based windows resume on
// the wall clock: buckets that aged out while the checkpoint sat on disk
// retire on the first operation.
//
// Deprecated: use Unmarshal, which restores every container tag behind
// the HeavyHitters interface (and accepts WithClock for deterministic
// resumes).
func UnmarshalWindowedListHeavyHitters(data []byte) (*WindowedListHeavyHitters, error) {
	return unmarshalWindowed(data, nil)
}

// ObserveArrivalStamp implements shard.ArrivalObserver: the sharded
// container stamps every dispatched batch with its global accepted-items
// count, and the window records the high-water mark against each epoch
// bucket. That is what lets the sharded report fold price this shard's
// covered mass as a share of recent global traffic and extrapolate its
// estimates (DESIGN.md §8). Single-owner use never calls it; the window
// then reports with legacy weights.
func (h *WindowedListHeavyHitters) ObserveArrivalStamp(stamp uint64) {
	h.w.ObserveArrivalStamp(stamp)
}

// arrivalStamps exposes the window's global-arrival accounting to the
// sharded fold: the stamp when the oldest covered bucket opened, the
// latest observed stamp, the stamp granularity, and whether the
// accounting is usable (false until stamps flow, and after a pre-stamp
// checkpoint restore).
func (h *WindowedListHeavyHitters) arrivalStamps() (oldest, latest, gap uint64, ok bool) {
	return h.w.ArrivalStamps()
}

// MergeEngine implements the shard-layer merge contract by refusing:
// sliding-window states are not mergeable — two nodes' windows cover
// different wall-clock slices, so folding them answers no well-defined
// window (DESIGN.md §8).
func (h *WindowedListHeavyHitters) MergeEngine(other shard.Engine) error {
	return h.CheckMergeEngine(other)
}

// CheckMergeEngine implements the non-mutating half of the shard merge
// contract; it always refuses (see MergeEngine).
func (h *WindowedListHeavyHitters) CheckMergeEngine(other shard.Engine) error {
	return merge.Incompatiblef("l1hh: sliding-window states are not mergeable (DESIGN.md §8)")
}
