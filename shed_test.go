package l1hh

// shed_test.go — the Shedder capability end to end through the front
// door: New builds sharded engines that shed with ErrSaturated inside a
// bounded wait instead of blocking forever, and the clean path stays
// equivalent to InsertBatch.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/shard"
)

// newShedder builds a 1-shard, depth-2 engine through New and hands
// back both the capability view and the inner shard layer (for stalling
// the worker deterministically).
func newShedder(t *testing.T, extra ...Option) (HeavyHitters, Shedder, *shard.Sharded) {
	t.Helper()
	opts := append([]Option{
		WithEps(0.05), WithPhi(0.2), WithStreamLength(100000),
		WithShards(1), WithQueueDepth(2), WithMaxBatch(4),
	}, extra...)
	h, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	sh, ok := h.(Shedder)
	if !ok {
		t.Fatalf("%T from New(WithShards(1)) does not implement Shedder", h)
	}
	concrete, ok := h.(*shardedHH)
	if !ok {
		t.Fatalf("New returned %T, want *shardedHH", h)
	}
	return h, sh, concrete.shardedBase.s.s
}

// stallWorker parks the single shard worker until release is called.
func stallWorker(t *testing.T, s *shard.Sharded) (release func()) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	go s.Do(func(int, shard.Engine) {
		close(started)
		<-gate
	})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("shard worker never picked up the stall op")
	}
	return func() { close(gate) }
}

func TestShedderSaturationRegression(t *testing.T) {
	h, sh, inner := newShedder(t)
	release := stallWorker(t, inner)

	items := make([]Item, 64)
	for i := range items {
		items[i] = Item(i)
	}
	// The regression this pins: before load shedding, this call hung
	// until the worker drained. Now it must give up within the bound.
	done := make(chan error, 1)
	go func() { done <- sh.InsertBatchBounded(items, 20*time.Millisecond) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("saturated InsertBatchBounded = %v, want ErrSaturated", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("InsertBatchBounded hung on a saturated engine")
	}

	// After the worker drains, the engine is coherent: the accepted
	// counter matches what the shards applied, and ingest works again.
	release()
	h.(Flusher).Flush()
	if err := sh.InsertBatchBounded(items, 5*time.Second); err != nil {
		t.Fatalf("InsertBatchBounded after drain: %v", err)
	}
	h.(Flusher).Flush()
	if st := h.Stats(); st.Items != h.Len() {
		t.Fatalf("Stats().Items = %d but engines applied %d after a shed", st.Items, h.Len())
	}
	if free := sh.SpareCapacity(); free < 1 {
		t.Fatalf("drained SpareCapacity = %d, want > 0", free)
	}
}

func TestShedderCleanPathMatchesInsertBatch(t *testing.T) {
	build := func() HeavyHitters {
		h, err := New(WithEps(0.05), WithPhi(0.2), WithStreamLength(100000),
			WithShards(2), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	bounded, plain := build(), build()
	defer bounded.Close()
	defer plain.Close()

	stream := NewZipfStream(3, 50000, 1.3)
	buf := make([]Item, 1000)
	for i := 0; i < 50; i++ {
		for j := range buf {
			buf[j] = stream.Next()
		}
		if err := bounded.(Shedder).InsertBatchBounded(buf, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := plain.InsertBatch(buf); err != nil {
			t.Fatal(err)
		}
	}
	b, p := bounded.Report(), plain.Report()
	if len(b) != len(p) {
		t.Fatalf("bounded ingest reported %d heavy hitters, plain %d", len(b), len(p))
	}
	for i := range b {
		if b[i].Item != p[i].Item || b[i].F != p[i].F {
			t.Fatalf("report[%d]: bounded %+v, plain %+v", i, b[i], p[i])
		}
	}
}

func TestUnshardedEngineHasNoShedder(t *testing.T) {
	h, err := New(WithEps(0.05), WithPhi(0.2), WithStreamLength(10000))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Without WithShards the front door builds a single serial solver:
	// no ingest queues, so there is nothing to shed and the capability
	// must be absent rather than lying.
	if _, ok := h.(Shedder); ok {
		t.Fatalf("%T implements Shedder but has no ingest queues", h)
	}
}
