package l1hh

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/shard"
)

// shardedTestConfig is a moderate workload the guarantee tests share:
// three planted heavy hitters over uniform noise.
var shardedTestWeights = []float64{0.20, 0.12, 0.06} // heavy at ids 0,1,2

func newShardedForTest(t *testing.T, shards int, seed uint64, m int) (*ShardedListHeavyHitters, []Item) {
	t.Helper()
	stream := GeneratePlantedStream(seed+1000, m, shardedTestWeights, 100, 1<<30, OrderShuffled)
	hh, err := NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{
			Eps: 0.02, Phi: 0.05, Delta: 0.05,
			StreamLength: uint64(m), Universe: 1 << 32, Seed: seed,
		},
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hh, stream
}

// checkGuarantees asserts the (ε,ϕ) contract against the planted truth:
// every ϕ-heavy planted item present with estimate within ε·m; nothing
// reported whose true frequency is ≤ (ϕ−ε)·m.
func checkGuarantees(t *testing.T, rep []ItemEstimate, stream []Item, eps, phi float64) {
	t.Helper()
	m := float64(len(stream))
	truth := map[Item]float64{}
	for _, x := range stream {
		truth[x]++
	}
	reported := map[Item]float64{}
	for _, r := range rep {
		reported[r.Item] = r.F
	}
	for x, f := range truth {
		if f >= phi*m {
			est, ok := reported[x]
			if !ok {
				t.Errorf("ϕ-heavy item %d (f=%.0f ≥ %.0f) missing from report", x, f, phi*m)
				continue
			}
			if est < f-eps*m || est > f+eps*m {
				t.Errorf("item %d estimate %.0f outside %.0f ± %.0f", x, est, f, eps*m)
			}
		}
	}
	for x := range reported {
		if truth[x] <= (phi-eps)*m {
			t.Errorf("light item %d (f=%.0f ≤ %.0f) falsely reported", x, truth[x], (phi-eps)*m)
		}
	}
}

// TestShardedGuarantees: the sharded solver satisfies the same (ε,ϕ)
// contract as the serial one, across shard counts and both engines.
func TestShardedGuarantees(t *testing.T) {
	const m = 200_000
	for _, shards := range []int{1, 2, 4, 8} {
		for _, algo := range []Algorithm{AlgorithmOptimal, AlgorithmSimple} {
			t.Run(fmt.Sprintf("shards=%d/algo=%d", shards, algo), func(t *testing.T) {
				stream := GeneratePlantedStream(31, m, shardedTestWeights, 100, 1<<30, OrderShuffled)
				hh, err := NewShardedListHeavyHitters(ShardedConfig{
					Config: Config{
						Eps: 0.02, Phi: 0.05, Delta: 0.05,
						StreamLength: m, Universe: 1 << 32,
						Algorithm: algo, Seed: uint64(7 + shards),
					},
					Shards: shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer hh.Close()
				for off := 0; off < m; off += 10_000 {
					end := min(off+10_000, m)
					if err := hh.InsertBatch(stream[off:end]); err != nil {
						t.Fatal(err)
					}
				}
				checkGuarantees(t, hh.Report(), stream, 0.02, 0.05)
				if got := hh.Len(); got != m {
					t.Fatalf("Len() = %d, want %d", got, m)
				}
			})
		}
	}
}

// TestShardedConcurrentProducers drives many goroutines through
// InsertBatch (run under -race in CI) and checks the report is still
// correct: concurrency must not lose, duplicate or corrupt items.
func TestShardedConcurrentProducers(t *testing.T) {
	const m = 160_000
	const producers = 8
	hh, stream := newShardedForTest(t, 4, 3, m)
	defer hh.Close()

	chunk := m / producers
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(part []Item) {
			defer wg.Done()
			for off := 0; off < len(part); off += 1000 {
				end := min(off+1000, len(part))
				if err := hh.InsertBatch(part[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(stream[p*chunk : (p+1)*chunk])
	}
	// A concurrent reader exercises the barrier paths mid-ingest.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			_ = hh.Report()
			_ = hh.QueueDepths()
			_ = hh.Items()
		}
	}()
	wg.Wait()
	<-done
	if got := hh.Len(); got != m {
		t.Fatalf("Len() = %d, want %d (items lost or duplicated)", got, m)
	}
	checkGuarantees(t, hh.Report(), stream, 0.02, 0.05)
}

// TestShardedCheckpointRoundTrip: checkpoint mid-stream, restore, feed
// both the same tail — reports and re-checkpoints must agree exactly.
func TestShardedCheckpointRoundTrip(t *testing.T) {
	const m = 100_000
	hh, stream := newShardedForTest(t, 4, 5, m)
	defer hh.Close()
	if err := hh.InsertBatch(stream[:m/2]); err != nil {
		t.Fatal(err)
	}
	blob, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalShardedListHeavyHitters(blob, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got, want := restored.Shards(), hh.Shards(); got != want {
		t.Fatalf("restored shards = %d, want %d", got, want)
	}
	if err := hh.InsertBatch(stream[m/2:]); err != nil {
		t.Fatal(err)
	}
	if err := restored.InsertBatch(stream[m/2:]); err != nil {
		t.Fatal(err)
	}
	a, b := hh.Report(), restored.Report()
	if len(a) == 0 {
		t.Fatal("empty report on a stream with planted heavy hitters")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("reports diverge after restore:\n%v\n%v", a, b)
	}
	ba, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("checkpoints diverge after identical tails")
	}
}

// TestShardedDeterminism: fixed seed + fixed shard count ⇒ identical
// reports and identical checkpoint bytes across runs.
func TestShardedDeterminism(t *testing.T) {
	const m = 80_000
	run := func() ([]ItemEstimate, []byte) {
		hh, stream := newShardedForTest(t, 4, 9, m)
		defer hh.Close()
		if err := hh.InsertBatch(stream); err != nil {
			t.Fatal(err)
		}
		blob, err := hh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return hh.Report(), blob
	}
	r1, b1 := run()
	r2, b2 := run()
	if fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Fatalf("reports not deterministic:\n%v\n%v", r1, r2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("checkpoint bytes not deterministic")
	}
}

// TestShardedCloseThenReport: the graceful-drain path — close, then take
// the final report inline.
func TestShardedCloseThenReport(t *testing.T) {
	const m = 60_000
	hh, stream := newShardedForTest(t, 3, 13, m)
	if err := hh.InsertBatch(stream); err != nil {
		t.Fatal(err)
	}
	if err := hh.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hh.InsertBatch(stream[:1]); err != shard.ErrClosed {
		t.Fatalf("InsertBatch after Close = %v, want shard.ErrClosed", err)
	}
	checkGuarantees(t, hh.Report(), stream, 0.02, 0.05)
	if _, err := hh.MarshalBinary(); err != nil {
		t.Fatal("checkpoint after Close:", err)
	}
}

// TestShardedRejectsBadConfig mirrors the serial constructor's
// validation through the sharded path.
func TestShardedRejectsBadConfig(t *testing.T) {
	_, err := NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{Eps: 0.5, Phi: 0.1, Delta: 0.05, // eps ≥ phi
			StreamLength: 1000, Universe: 1 << 16},
		Shards: 2,
	})
	if err == nil {
		t.Fatal("eps ≥ phi accepted")
	}
	_, err = NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{Eps: 0.01, Phi: 0.05, Delta: 0.05,
			StreamLength: 1000, Universe: 1 << 16},
		Shards: -4,
	})
	if err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestUnmarshalShardedRejectsCorrupt: wrong tag, truncation, garbage.
func TestUnmarshalShardedRejectsCorrupt(t *testing.T) {
	hh, stream := newShardedForTest(t, 2, 17, 10_000)
	defer hh.Close()
	if err := hh.InsertBatch(stream[:10_000]); err != nil {
		t.Fatal(err)
	}
	blob, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalShardedListHeavyHitters(nil, 0, 0); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := UnmarshalShardedListHeavyHitters(blob[:len(blob)/2], 0, 0); err == nil {
		t.Fatal("truncation accepted")
	}
	wrongTag := append([]byte{}, blob...)
	wrongTag[0] = tagOptimal
	if _, err := UnmarshalShardedListHeavyHitters(wrongTag, 0, 0); err == nil {
		t.Fatal("wrong tag accepted")
	}
	if _, err := UnmarshalShardedListHeavyHitters(append(blob, 0x00), 0, 0); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestShardedUnknownLengthIngest: StreamLength 0 engages the per-shard
// unknown-length solvers; ingest and report work, checkpointing is
// explicitly unsupported.
func TestShardedUnknownLengthIngest(t *testing.T) {
	const m = 120_000
	stream := GeneratePlantedStream(51, m, []float64{0.25, 0.15}, 100, 1<<30, OrderShuffled)
	hh, err := NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{
			Eps: 0.05, Phi: 0.12, Delta: 0.05,
			Universe: 1 << 32, Seed: 19, // StreamLength 0 = unknown
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hh.Close()
	if err := hh.InsertBatch(stream); err != nil {
		t.Fatal(err)
	}
	checkGuarantees(t, hh.Report(), stream, 0.05, 0.12)
	if _, err := hh.MarshalBinary(); err == nil {
		t.Fatal("unknown-length checkpoint must fail")
	}
}
