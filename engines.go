package l1hh

// engines.go — the single construction and restore path behind both the
// unified front door (New / Unmarshal, solver.go) and the deprecated
// per-type constructors. The decorator stack is canonical: the sharded
// container wraps per-shard engines, each of which is either a serial
// solver or a window of serial solvers (DESIGN.md §9).

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/unknown"
	"repro/internal/window"
	"repro/internal/wire"
)

// Algorithm tags for serialized solvers.
const (
	tagOptimal byte = 1
	tagSimple  byte = 2
	// tagSharded marks a sharded container, whose frame nests per-shard
	// encodings that carry their own engine tags.
	tagSharded byte = 3
	// tagWindowed marks a windowed frame: window configuration plus the
	// bucket container, each bucket nesting a tagOptimal/tagSimple
	// solver encoding.
	tagWindowed byte = 4
	// tagShardedWindowed marks the v2 sharded container: the tagSharded
	// frame extended with the window geometry, nesting tagWindowed
	// per-shard encodings. Decoders accept both container versions;
	// encoders emit tagSharded when no window is configured, so
	// non-windowed checkpoints stay readable by older builds.
	tagShardedWindowed byte = 5
	// tagPool marks a multi-tenant pool checkpoint: a manifest of
	// per-tenant engine encodings (each nesting one of the tags above)
	// plus the pool's budget and counters. Restored by UnmarshalPool,
	// not Unmarshal — a pool is a container of solvers, not a solver.
	tagPool byte = 6
	// tagBorda and tagMaximin mark the voting problem engines
	// (WithProblem): the List threshold ϕ framing the sketch's own
	// encoding, which carries the remaining parameters.
	tagBorda   byte = 7
	tagMaximin byte = 8
	// tagMinimum and tagMaximum mark the frequency-extreme problem
	// engines; the inner encodings are fully self-describing, so the tag
	// prefixes them directly.
	tagMinimum byte = 9
	tagMaximum byte = 10
)

// taggedMarshal prefixes the engine tag to the engine's own encoding.
func taggedMarshal(tag byte, m interface{ MarshalBinary() ([]byte, error) }) ([]byte, error) {
	blob, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append([]byte{tag}, blob...), nil
}

// buildSerial constructs the serial solver for cfg: the known-length
// engines of Theorems 1–2, or the unknown-length machinery of Theorem 7
// when cfg.StreamLength is zero.
func buildSerial(cfg Config) (*ListHeavyHitters, error) {
	cfg.fill()
	src := rng.New(cfg.Seed)
	if cfg.StreamLength == 0 {
		// The staggering technique of Theorem 7 applies to Algorithm 1
		// (the paper notes it does not transfer to Algorithm 2).
		u, err := unknown.NewListHH(src, cfg.Eps, cfg.Phi, cfg.Delta, cfg.Universe)
		if err != nil {
			return nil, err
		}
		return &ListHeavyHitters{
			insert: u.Insert, report: u.Report, bits: u.ModelBits, length: u.Len,
			marshal: func() ([]byte, error) {
				return nil, errors.New("l1hh: unknown-length solvers are not serializable")
			},
			eps: cfg.Eps, phi: cfg.Phi,
		}, nil
	}
	ccfg := core.Config{
		Eps: cfg.Eps, Phi: cfg.Phi, Delta: cfg.Delta,
		M: cfg.StreamLength, N: cfg.Universe,
	}
	switch cfg.Algorithm {
	case AlgorithmOptimal:
		a, err := core.NewOptimal(src, ccfg)
		if err != nil {
			return nil, err
		}
		h := newSerialOver(a, tagOptimal, cfg.Eps, cfg.Phi)
		h.applyPacing(cfg.PacedBudget, a)
		return h, nil
	case AlgorithmSimple:
		a, err := core.NewSimpleList(src, ccfg)
		if err != nil {
			return nil, err
		}
		h := newSerialOver(a, tagSimple, cfg.Eps, cfg.Phi)
		h.applyPacing(cfg.PacedBudget, a)
		return h, nil
	default:
		return nil, errors.New("l1hh: unknown algorithm")
	}
}

// serialEngine is what a known-length serial solver wraps: the shared
// method set of *core.Optimal and *core.SimpleList.
type serialEngine interface {
	Insert(x uint64)
	Report() []ItemEstimate
	ModelBits() int64
	Len() uint64
	MarshalBinary() ([]byte, error)
}

// newSerialOver wires a ListHeavyHitters facade over a known-length core
// engine.
func newSerialOver(a serialEngine, tag byte, eps, phi float64) *ListHeavyHitters {
	return &ListHeavyHitters{
		insert: a.Insert, report: a.Report, bits: a.ModelBits, length: a.Len,
		marshal: func() ([]byte, error) { return taggedMarshal(tag, a) },
		engine:  a,
		eps:     eps, phi: phi,
	}
}

// unmarshalSerial reconstructs a known-length serial solver from a tag
// 1–2 encoding; the problem parameters are recovered from the engine
// state itself.
func unmarshalSerial(data []byte) (*ListHeavyHitters, error) {
	if len(data) < 2 {
		return nil, errors.New("l1hh: truncated solver encoding")
	}
	switch data[0] {
	case tagOptimal:
		a := new(core.Optimal)
		if err := a.UnmarshalBinary(data[1:]); err != nil {
			return nil, err
		}
		p := a.Params()
		return newSerialOver(a, tagOptimal, p.Eps, p.Phi), nil
	case tagSimple:
		a := new(core.SimpleList)
		if err := a.UnmarshalBinary(data[1:]); err != nil {
			return nil, err
		}
		p := a.Params()
		return newSerialOver(a, tagSimple, p.Eps, p.Phi), nil
	default:
		return nil, errors.New("l1hh: unrecognized solver encoding")
	}
}

// minWindowEps is the smallest ε a windowed solver accepts: 2⁻¹³ ≈
// 1.2·10⁻⁴. Bucket engines are rebuilt from checkpoint frames
// (unmarshalWindowed feeds decoded parameters straight into the solver
// constructors), so the decode path must be able to bound the
// constructors' table allocations — a hostile frame with an absurdly
// small ε would otherwise demand gigabytes. The floor caps the
// per-bucket accelerated-counter tables at a few MB and is far below
// any ε a window-scale stream can support (DESIGN.md §8).
const minWindowEps = 1.0 / (1 << 13)

// windowEngineConfig derives the per-bucket solver Config: every bucket
// runs the same engine with the same seed (the fold rules require
// identical random choices), declared at the maximum mass one report can
// cover — the window plus one epoch of slack. It also range-checks the
// problem parameters (rejecting NaN), because both the constructor and
// the checkpoint decoder route through it.
func windowEngineConfig(cfg WindowConfig) (Config, error) {
	c := cfg.Config
	if !(c.Eps >= minWindowEps && c.Eps < 1) {
		return c, fmt.Errorf("l1hh: windowed solvers need ε in [2⁻¹³, 1), got %v", c.Eps)
	}
	if !(c.Phi > c.Eps && c.Phi <= 1) {
		return c, fmt.Errorf("l1hh: phi = %v out of (eps, 1]", c.Phi)
	}
	if c.Delta != 0 && !(c.Delta > 0 && c.Delta < 1) {
		return c, fmt.Errorf("l1hh: delta = %v out of (0,1)", c.Delta)
	}
	if cfg.Window > window.MaxLastN {
		// Also guards the slack ceil-division below against wraparound.
		return c, fmt.Errorf("l1hh: window %d exceeds the %d maximum", cfg.Window, uint64(window.MaxLastN))
	}
	b := cfg.WindowBuckets
	if b == 0 {
		b = window.DefaultBuckets
	}
	if b < 1 {
		return c, fmt.Errorf("l1hh: invalid window bucket count %d", b)
	}
	switch {
	case cfg.Window > 0:
		slack := (cfg.Window + uint64(b) - 1) / uint64(b)
		c.StreamLength = cfg.Window + slack
	case cfg.WindowDuration > 0:
		if c.StreamLength == 0 {
			return c, errors.New("l1hh: a duration window needs Config.StreamLength (expected items per window)")
		}
		slack := (c.StreamLength + uint64(b) - 1) / uint64(b)
		c.StreamLength += slack
	}
	return c, nil
}

// buildWindowed constructs the sliding-window decorator: a window of
// serial engines, every bucket built from the same derived Config.
func buildWindowed(cfg WindowConfig) (*WindowedListHeavyHitters, error) {
	cfg.fill()
	ecfg, err := windowEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	factory := func() (shard.Engine, error) { return buildSerial(ecfg) }
	restorer := func(blob []byte) (shard.Engine, error) { return unmarshalSerial(blob) }
	w, err := window.New(factory, restorer, window.Options{
		LastN:        cfg.Window,
		LastDuration: cfg.WindowDuration,
		Buckets:      cfg.WindowBuckets,
		Now:          cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	return &WindowedListHeavyHitters{w: w, cfg: cfg, eps: cfg.Eps, phi: cfg.Phi}, nil
}

// unmarshalWindowed reconstructs a windowed solver from a tag-4
// encoding. clock overrides the wall clock the restored window runs on
// (nil means time.Now); time-based windows then retire what aged out
// while the checkpoint sat on disk on the first operation.
func unmarshalWindowed(data []byte, clock func() time.Time) (*WindowedListHeavyHitters, error) {
	if len(data) < 1 || data[0] != tagWindowed {
		return nil, errors.New("l1hh: not a windowed solver encoding")
	}
	r := wire.NewReader(data[1:])
	var cfg WindowConfig
	cfg.Eps = r.F64()
	cfg.Phi = r.F64()
	cfg.Delta = r.F64()
	cfg.StreamLength = r.U64()
	cfg.Universe = r.U64()
	algo := r.U64()
	paced := r.U64()
	cfg.Seed = r.U64()
	cfg.Window = r.U64()
	cfg.WindowDuration = time.Duration(r.I64())
	cfg.WindowBuckets = int(r.U64())
	blob := r.Blob()
	if r.Err() != nil {
		return nil, fmt.Errorf("l1hh: corrupt windowed encoding: %w", r.Err())
	}
	if !r.Done() {
		return nil, errors.New("l1hh: trailing bytes after windowed encoding")
	}
	if algo > uint64(AlgorithmSimple) {
		return nil, fmt.Errorf("l1hh: unknown algorithm %d in windowed encoding", algo)
	}
	cfg.Algorithm = Algorithm(algo)
	cfg.PacedBudget = int(paced)
	cfg.Clock = clock
	ecfg, err := windowEngineConfig(cfg)
	if err != nil {
		return nil, err
	}
	factory := func() (shard.Engine, error) { return buildSerial(ecfg) }
	restorer := func(b []byte) (shard.Engine, error) { return unmarshalSerial(b) }
	w, err := window.Restore(blob, factory, restorer, window.Options{Now: clock})
	if err != nil {
		return nil, err
	}
	// The geometry is encoded twice: in this frame (it sizes the bucket
	// engines above) and in the window snapshot (it drives retirement).
	// A tampered blob could make them disagree — mis-sized engines and
	// lying metadata — so reject any mismatch.
	lastN, lastDur, buckets := w.Geometry()
	if lastN != cfg.Window || lastDur != cfg.WindowDuration ||
		(cfg.WindowBuckets != 0 && buckets != cfg.WindowBuckets) ||
		(cfg.WindowBuckets == 0 && buckets != window.DefaultBuckets) {
		return nil, errors.New("l1hh: window geometry mismatch between frame and snapshot")
	}
	return &WindowedListHeavyHitters{w: w, cfg: cfg, eps: cfg.Eps, phi: cfg.Phi}, nil
}

// splitCountWindow is the per-shard count window ⌈w/k⌉ — the one place
// the split policy is defined. The shard-engine constructor
// (shardWindowConfig) sizes the actual windows with it, and the Stats
// geometry (WindowStats.PerShardWindow, surfaced by hhd's /report)
// reads the same function, so the advertised split can never diverge
// from the running one.
func splitCountWindow(w uint64, shards int) uint64 {
	if w == 0 || shards <= 0 {
		return 0
	}
	return (w + uint64(shards) - 1) / uint64(shards)
}

// shardWindowConfig derives one shard's window geometry: a count window
// splits ⌈W/K⌉ per shard (hash partitioning spreads the last W global
// items ≈ evenly, so per-shard suffixes union to ≈ the global suffix); a
// time window keeps the same wall-clock span on every shard. clock
// overrides every shard window's clock (nil means time.Now).
func shardWindowConfig(cfg ShardedConfig, ecfg Config, total int, clock func() time.Time) WindowConfig {
	return WindowConfig{
		Config:         ecfg,
		Window:         splitCountWindow(cfg.Window, total),
		WindowDuration: cfg.WindowDuration,
		WindowBuckets:  cfg.WindowBuckets,
		Clock:          clock,
	}
}

// shardEngineConfig derives one shard's solver Config from the global
// problem: same (ε, ϕ), failure probability split δ/K so a union bound
// covers all shards, and — deliberately — the *global* declared stream
// length m, not m/K.
//
// Declaring m/K per shard (the pre-PR-7 rule) looked natural but
// multiplied per-item work instead of dividing it: Algorithm 2 samples
// at rate p = min(1, ℓ/M) with ℓ = Θ(1/ε²), and at production settings
// (m = 2²², K = 4, ε = 0.01) the per-shard declaration m/K drops below
// ℓ, pinning every shard at p = 1 — all K shards together process ≈ K·ℓ
// samples where the serial solver processes ℓ, so sharded ingest cost
// 3.5× serial (the E8 regression). Declaring the global m keeps the
// aggregate sample budget at ℓ regardless of K.
//
// Accuracy is preserved (DESIGN.md §3): each shard's additive error is
// ε·M relative to its *declared* length M = m, which is exactly the ε·m
// the container's global (ϕ − ε/2)·m report threshold budgets for, and
// a shard receiving fewer than m items only ever oversamples relative
// to its substream. Skew is also safer than under m/K: no shard can
// receive more than the global m, so the declared length is never an
// underestimate.
func shardEngineConfig(cfg Config, total int, seed uint64) Config {
	c := cfg
	c.Delta = cfg.Delta / float64(total)
	c.Seed = seed
	return c
}

// buildSharded constructs the concurrent container: per-shard engine
// seeds and the partition-hash seed all derive from cfg.Seed, so a fixed
// (Seed, Shards) pair is fully reproducible. With the Window fields set,
// every shard runs a sliding window over its substream (built on clock;
// nil means time.Now). hooks are the optional ingest stage-timing
// callbacks (WithIngestObserver); the zero value disables them.
func buildSharded(cfg ShardedConfig, clock func() time.Time, hooks shard.Hooks) (*ShardedListHeavyHitters, error) {
	cfg.fill()
	if cfg.Window > 0 && cfg.WindowDuration > 0 {
		return nil, errors.New("l1hh: Window and WindowDuration are mutually exclusive")
	}
	if cfg.WindowDuration < 0 {
		// Silently building a whole-stream engine here would leave the
		// caller believing reports are windowed.
		return nil, fmt.Errorf("l1hh: negative WindowDuration %s", cfg.WindowDuration)
	}
	if cfg.Window > window.MaxLastN {
		// Guards the per-shard ⌈W/K⌉ split against uint64 wraparound.
		return nil, fmt.Errorf("l1hh: window %d exceeds the %d maximum", cfg.Window, uint64(window.MaxLastN))
	}
	opts := shard.Options{
		Shards:     cfg.Shards,
		QueueDepth: cfg.QueueDepth,
		MaxBatch:   cfg.MaxBatch,
		Hooks:      hooks,
	}
	seeds := rng.New(cfg.Seed)
	opts.Seed = seeds.Uint64()
	factory := func(i, total int) (shard.Engine, error) {
		ecfg := shardEngineConfig(cfg.Config, total, seeds.Uint64())
		if !cfg.windowed() {
			return buildSerial(ecfg)
		}
		return buildWindowed(shardWindowConfig(cfg, ecfg, total, clock))
	}
	s, err := shard.New(factory, opts)
	if err != nil {
		return nil, err
	}
	return &ShardedListHeavyHitters{
		s: s, eps: cfg.Eps, phi: cfg.Phi,
		window: cfg.Window, windowDur: cfg.WindowDuration, windowBuckets: cfg.WindowBuckets,
		rawWindows: cfg.RawShardWindows,
	}, nil
}

// unmarshalSharded reconstructs a sharded container from a tag 3 or 5
// encoding; the restored solver continues the stream exactly where the
// original stopped, with identical routing. QueueDepth and MaxBatch are
// runtime tuning, not serialized state — pass zero for the defaults.
// clock overrides restored shard windows' clocks (tag 5 only);
// pacedBudget re-applies per-shard insert pacing (tag 3 only — windowed
// frames serialize their own budget), because pacing is runtime tuning
// the per-shard tag-1/2 blobs do not record; rawWindows re-applies the
// count-window extrapolation opt-out (tag 5 only), runtime tuning for
// the same reason; hooks re-install the ingest stage-timing callbacks
// (WithIngestObserver), runtime instrumentation that is never
// serialized.
func unmarshalSharded(data []byte, queueDepth, maxBatch int, clock func() time.Time, pacedBudget int, rawWindows bool, hooks shard.Hooks) (*ShardedListHeavyHitters, error) {
	if len(data) < 1 || (data[0] != tagSharded && data[0] != tagShardedWindowed) {
		return nil, errors.New("l1hh: not a sharded solver encoding")
	}
	r := wire.NewReader(data[1:])
	h := &ShardedListHeavyHitters{rawWindows: rawWindows}
	h.eps = r.F64()
	h.phi = r.F64()
	if data[0] == tagShardedWindowed {
		h.window = r.U64()
		h.windowDur = time.Duration(r.I64())
		h.windowBuckets = int(r.U64())
	}
	snap := r.Blob()
	if r.Err() != nil {
		return nil, fmt.Errorf("l1hh: corrupt sharded encoding: %w", r.Err())
	}
	if !r.Done() {
		return nil, errors.New("l1hh: trailing bytes after sharded encoding")
	}
	if data[0] == tagShardedWindowed && !h.Windowed() {
		return nil, errors.New("l1hh: windowed container encodes no window geometry")
	}
	// The container tag must agree with the nested engine types, and a
	// windowed container's frame geometry with each shard's own window
	// record — otherwise a crafted checkpoint restores with Windowed()
	// and WindowStats lying about what reports actually cover.
	s, err := shard.Restore(snap, func(i, total int, blob []byte) (shard.Engine, error) {
		if len(blob) >= 1 && blob[0] == tagWindowed {
			if !h.Windowed() {
				return nil, errors.New("l1hh: windowed shard engine inside a non-windowed container")
			}
			w, err := unmarshalWindowed(blob, clock)
			if err != nil {
				return nil, err
			}
			want := shardWindowConfig(ShardedConfig{
				Window: h.window, WindowDuration: h.windowDur, WindowBuckets: h.windowBuckets,
			}, w.cfg.Config, total, nil)
			if w.cfg.Window != want.Window || w.cfg.WindowDuration != want.WindowDuration ||
				w.cfg.WindowBuckets != want.WindowBuckets {
				return nil, errors.New("l1hh: shard window geometry disagrees with the container frame")
			}
			return w, nil
		}
		if h.Windowed() {
			return nil, errors.New("l1hh: plain shard engine inside a windowed container")
		}
		e, err := unmarshalSerial(blob)
		if err != nil {
			return nil, err
		}
		if pacedBudget > 0 {
			if p, ok := e.engine.(core.Pacable); ok {
				e.applyPacing(pacedBudget, p)
			}
		}
		return e, nil
	}, shard.Options{QueueDepth: queueDepth, MaxBatch: maxBatch, Hooks: hooks})
	if err != nil {
		return nil, err
	}
	h.s = s
	return h, nil
}
