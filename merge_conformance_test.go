package l1hh

// Statistical conformance suite for the distributed merge tier: the
// merged report of K independently-fed nodes must satisfy the same (ε,ϕ)
// guarantees as one solver over the concatenated stream. Streams cover
// the easy case (zipf), the no-skew-but-heavy case (uniform over a tiny
// support), and adversarial arrangements (all heavy items delivered
// last, and sorted runs), all with fixed seeds.

import (
	"fmt"
	"testing"

	"repro/internal/merge"
)

const (
	confEps = 0.02
	confPhi = 0.05
	confM   = 200_000
)

// conformanceStreams materializes the fixed test streams. Every stream
// has items above ϕ·m and noise below (ϕ−ε)·m.
func conformanceStreams() map[string][]Item {
	return map[string][]Item{
		// Zipf(1.3) over a large universe: a handful of ϕ-heavy ids.
		"zipf": Generate(NewZipfStream(101, 1<<20, 1.3), confM),
		// Uniform over 12 ids: every item is ≈ m/12 ≈ 0.083m ≥ ϕ·m heavy.
		"uniform": Generate(NewUniformStream(103, 12), confM),
		// Adversarially permuted: the planted heavy items arrive only
		// after every node has seen its slice of pure noise — the split
		// maximally skews per-node summaries.
		"heavy-last": GeneratePlantedStream(105, confM,
			[]float64{0.20, 0.12, 0.06}, 100, 1<<30, OrderHeavyLast),
		// Sorted runs: each id's copies are contiguous, so a node can see
		// one id for its entire slice.
		"sorted-runs": GeneratePlantedStream(107, confM,
			[]float64{0.20, 0.12, 0.06}, 100, 1<<30, OrderSorted),
	}
}

// splitAcross feeds stream to k same-config nodes in contiguous slices.
func splitAcross[T any](t *testing.T, stream []Item, k int, mk func() T, insert func(T, []Item)) []T {
	t.Helper()
	nodes := make([]T, k)
	chunk := (len(stream) + k - 1) / k
	for i := range nodes {
		nodes[i] = mk()
		lo := i * chunk
		hi := min(lo+chunk, len(stream))
		if lo < hi {
			insert(nodes[i], stream[lo:hi])
		}
	}
	return nodes
}

// TestMergeConformanceSerial: K ∈ {2,4,8} ListHeavyHitters nodes, both
// engines, all stream shapes.
func TestMergeConformanceSerial(t *testing.T) {
	for name, stream := range conformanceStreams() {
		for _, k := range []int{2, 4, 8} {
			for _, algo := range []Algorithm{AlgorithmOptimal, AlgorithmSimple} {
				t.Run(fmt.Sprintf("%s/k=%d/algo=%d", name, k, algo), func(t *testing.T) {
					cfg := Config{
						Eps: confEps, Phi: confPhi, Delta: 0.05,
						StreamLength: confM, Universe: 1 << 32,
						Algorithm: algo, Seed: 271,
					}
					nodes := splitAcross(t, stream, k,
						func() *ListHeavyHitters {
							h, err := NewListHeavyHitters(cfg)
							if err != nil {
								t.Fatal(err)
							}
							return h
						},
						func(h *ListHeavyHitters, xs []Item) {
							for _, x := range xs {
								h.Insert(x)
							}
						})
					if err := merge.Fold(nodes[0], nodes[1:]...); err != nil {
						t.Fatal(err)
					}
					if got := nodes[0].Len(); got != confM {
						t.Fatalf("merged Len = %d, want %d", got, confM)
					}
					checkGuarantees(t, nodes[0].Report(), stream, confEps, confPhi)
				})
			}
		}
	}
}

// TestMergeConformanceSharded: the same property through the full stack —
// K sharded nodes merged via checkpoints.
func TestMergeConformanceSharded(t *testing.T) {
	stream := conformanceStreams()["zipf"]
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			cfg := ShardedConfig{
				Config: Config{
					Eps: confEps, Phi: confPhi, Delta: 0.05,
					StreamLength: confM, Universe: 1 << 32, Seed: 277,
				},
				Shards: 4,
			}
			nodes := splitAcross(t, stream, k,
				func() *ShardedListHeavyHitters {
					h, err := NewShardedListHeavyHitters(cfg)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { h.Close() })
					return h
				},
				func(h *ShardedListHeavyHitters, xs []Item) {
					if err := h.InsertBatch(xs); err != nil {
						t.Fatal(err)
					}
				})
			if err := merge.Fold(nodes[0], nodes[1:]...); err != nil {
				t.Fatal(err)
			}
			if got := nodes[0].Len(); got != confM {
				t.Fatalf("merged Len = %d, want %d", got, confM)
			}
			checkGuarantees(t, nodes[0].Report(), stream, confEps, confPhi)
		})
	}
}
