package l1hh

// Backward-compatibility suite for the universal checkpoint codec:
// golden checkpoint bytes produced by the deprecated per-type API (the
// PR 1–3 encodings, tags 1–5) are committed under testdata/checkpoints
// and must keep restoring through the universal Unmarshal; and fresh
// bytes are interchangeable between the old and new API in both
// directions. Regenerate the golden files with
//
//	go test -run TestGoldenCheckpoints -update-golden .
//
// (only when the codec version legitimately moves — the whole point of
// the files is that old bytes keep working).

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata/checkpoints golden files")

// goldenClock pins windowed bucket timestamps so regenerated golden
// files do not churn on wall-clock noise.
var goldenClock = func() time.Time { return time.Unix(1_700_000_000, 0) }

// goldenCase builds one checkpoint through the DEPRECATED constructors —
// the bytes PR 1–3 deployments have on disk — plus the assertions its
// restore must satisfy.
type goldenCase struct {
	file     string
	tag      byte
	build    func() ([]byte, error)
	wantLen  uint64
	windower bool
	sharder  bool
	// problem marks the engines built through the problem-keyed front
	// door (tags 7–10); their assertions run in the problem's own
	// currency (ballots / bounded items) instead of the planted-item
	// heavy-hitters checks.
	problem Problem
}

// goldenStream is the fixed stream every golden engine ingests: id 7 on
// even positions, rotating light ids elsewhere.
func goldenStream(n int) []Item {
	out := make([]Item, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = 7
		} else {
			out[i] = uint64(100 + i%31)
		}
	}
	return out
}

// goldenBallots is the fixed election every golden voting engine
// counts: ballot i is the identity ranking rotated by i mod n, so
// candidate 0 leads both the Borda and maximin tallies.
func goldenBallots(m, n int) []Ranking {
	out := make([]Ranking, m)
	for i := range out {
		rk := make(Ranking, n)
		rot := i % n
		if i%3 == 0 {
			rot = 0 // candidate 0 tops every third ballot
		}
		for j := range rk {
			rk[j] = uint32((j + rot) % n)
		}
		out[i] = rk
	}
	return out
}

func goldenConfig(algo Algorithm) Config {
	return Config{
		Eps: 0.05, Phi: 0.2, Delta: 0.05,
		StreamLength: 4000, Universe: 1 << 20,
		Algorithm: algo, Seed: 42,
	}
}

func goldenCases() []goldenCase {
	const n = 2000
	serial := func(algo Algorithm) func() ([]byte, error) {
		return func() ([]byte, error) {
			hh, err := NewListHeavyHitters(goldenConfig(algo))
			if err != nil {
				return nil, err
			}
			for _, x := range goldenStream(n) {
				hh.Insert(x)
			}
			return hh.MarshalBinary()
		}
	}
	return []goldenCase{
		{file: "tag1_serial_optimal.bin", tag: tagOptimal, build: serial(AlgorithmOptimal), wantLen: n},
		{file: "tag2_serial_simple.bin", tag: tagSimple, build: serial(AlgorithmSimple), wantLen: n},
		{file: "tag3_sharded.bin", tag: tagSharded, wantLen: n, sharder: true,
			build: func() ([]byte, error) {
				hh, err := NewShardedListHeavyHitters(ShardedConfig{
					Config: goldenConfig(AlgorithmSimple), Shards: 2,
				})
				if err != nil {
					return nil, err
				}
				defer hh.Close()
				if err := hh.InsertBatch(goldenStream(n)); err != nil {
					return nil, err
				}
				return hh.MarshalBinary()
			}},
		{file: "tag4_windowed.bin", tag: tagWindowed, wantLen: 592, windower: true,
			build: func() ([]byte, error) {
				// W=512, B=4 → bucket cap 128; after 2000 inserts the ring
				// holds 4 sealed buckets (512) plus 80 live items = 592
				// covered (dropping another bucket would fall below W).
				hh, err := NewWindowedListHeavyHitters(WindowConfig{
					Config: goldenConfig(AlgorithmSimple),
					Window: 512, WindowBuckets: 4, Clock: goldenClock,
				})
				if err != nil {
					return nil, err
				}
				for _, x := range goldenStream(n) {
					hh.Insert(x)
				}
				return hh.MarshalBinary()
			}},
		{file: "tag5_sharded_windowed.bin", tag: tagShardedWindowed, windower: true, sharder: true,
			// Per-shard window ⌈512/2⌉=256, cap 64; hash partitioning makes
			// the exact covered mass shard-dependent, so wantLen is left 0
			// (checked as Len == covered instead).
			build: func() ([]byte, error) {
				hh, err := NewShardedListHeavyHitters(ShardedConfig{
					Config: goldenConfig(AlgorithmSimple), Shards: 2,
					Window: 512, WindowBuckets: 4,
				})
				if err != nil {
					return nil, err
				}
				defer hh.Close()
				if err := hh.InsertBatch(goldenStream(n)); err != nil {
					return nil, err
				}
				return hh.MarshalBinary()
			}},
		{file: "tag7_borda.bin", tag: tagBorda, wantLen: n, problem: BordaProblem,
			build: buildGoldenVoter(BordaProblem, n)},
		{file: "tag8_maximin.bin", tag: tagMaximin, wantLen: n, problem: MaximinProblem,
			build: buildGoldenVoter(MaximinProblem, n)},
		{file: "tag9_minimum.bin", tag: tagMinimum, wantLen: n, problem: MinFrequencyProblem,
			build: buildGoldenExtremes(MinFrequencyProblem, n)},
		{file: "tag10_maximum.bin", tag: tagMaximum, wantLen: n, problem: MaxFrequencyProblem,
			build: buildGoldenExtremes(MaxFrequencyProblem, n)},
	}
}

// buildGoldenVoter checkpoints a tag 7/8 voting engine over the fixed
// golden election, through the problem-keyed front door.
func buildGoldenVoter(problem Problem, m int) func() ([]byte, error) {
	return func() ([]byte, error) {
		hh, err := New(WithProblem(problem), WithCandidates(8),
			WithEps(0.05), WithPhi(0.2), WithDelta(0.05),
			WithStreamLength(4000), WithSeed(42))
		if err != nil {
			return nil, err
		}
		v := hh.(Voter)
		for _, rk := range goldenBallots(m, 8) {
			if err := v.Vote(rk); err != nil {
				return nil, err
			}
		}
		return hh.MarshalBinary()
	}
}

// buildGoldenExtremes checkpoints a tag 9/10 extremes engine over the
// golden stream folded into a 64-item universe (the ε-Minimum machinery
// indexes by item id, so the golden universe stays small).
func buildGoldenExtremes(problem Problem, m int) func() ([]byte, error) {
	return func() ([]byte, error) {
		hh, err := New(WithProblem(problem),
			WithEps(0.05), WithDelta(0.05),
			WithStreamLength(4000), WithUniverse(64), WithSeed(42))
		if err != nil {
			return nil, err
		}
		for _, x := range goldenStream(m) {
			if err := hh.Insert(x % 64); err != nil {
				return nil, err
			}
		}
		return hh.MarshalBinary()
	}
}

// TestGoldenCheckpoints: the committed PR 1–3 era checkpoint bytes
// restore through the universal Unmarshal with the right tag, length,
// parameters and capability set — the on-disk compatibility contract.
func TestGoldenCheckpoints(t *testing.T) {
	dir := filepath.Join("testdata", "checkpoints")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, gc := range goldenCases() {
		t.Run(gc.file, func(t *testing.T) {
			path := filepath.Join(dir, gc.file)
			if *updateGolden {
				blob, err := gc.build()
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				// Mirror the blob into FuzzUnmarshalAny's committed corpus
				// so the fuzzer always starts from every container tag.
				corpusDir := filepath.Join("testdata", "fuzz", "FuzzUnmarshalAny")
				if err := os.MkdirAll(corpusDir, 0o755); err != nil {
					t.Fatal(err)
				}
				entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", blob)
				seed := filepath.Join(corpusDir, "seed_"+gc.file)
				if err := os.WriteFile(seed, []byte(entry), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
			}
			if len(blob) == 0 || blob[0] != gc.tag {
				t.Fatalf("golden file tag = %d, want %d", blob[0], gc.tag)
			}
			hh, err := Unmarshal(blob)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			defer hh.Close()
			if gc.wantLen > 0 && hh.Len() != gc.wantLen {
				t.Fatalf("restored Len = %d, want %d", hh.Len(), gc.wantLen)
			}
			wantPhi := 0.2
			if gc.problem == MinFrequencyProblem || gc.problem == MaxFrequencyProblem {
				wantPhi = 0 // extremes solvers have no heaviness threshold
			}
			if hh.Eps() != 0.05 || hh.Phi() != wantPhi {
				t.Fatalf("restored (eps,phi) = (%g,%g), want (0.05,%g)", hh.Eps(), hh.Phi(), wantPhi)
			}
			if _, ok := hh.(Windower); ok != gc.windower {
				t.Errorf("Windower = %v, want %v", ok, gc.windower)
			}
			if _, ok := hh.(Sharder); ok != gc.sharder {
				t.Errorf("Sharder = %v, want %v", ok, gc.sharder)
			}
			st := hh.Stats()
			if st.Len != hh.Len() || st.ModelBits <= 0 {
				t.Fatalf("restored Stats incoherent: %+v", st)
			}
			checkGoldenRestore(t, gc, hh)
		})
	}
}

// checkGoldenRestore asserts a restored golden engine answers — and
// stays usable — in its problem's own currency.
func checkGoldenRestore(t *testing.T, gc goldenCase, hh HeavyHitters) {
	t.Helper()
	switch gc.problem {
	case BordaProblem, MaximinProblem:
		v, ok := hh.(Voter)
		if !ok {
			t.Fatalf("restored %s engine lost the Voter capability", gc.problem)
		}
		if c, _ := v.Winner(); c != 0 {
			t.Fatalf("golden election winner = %d, want the planted candidate 0", c)
		}
		if err := hh.Insert(7); !errors.Is(err, ErrNotItems) {
			t.Fatalf("Insert on a voting engine = %v, want ErrNotItems", err)
		}
		if err := v.Vote(Ranking{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
			t.Fatalf("Vote on restored voter: %v", err)
		}
	case MinFrequencyProblem, MaxFrequencyProblem:
		ex, ok := hh.(Extremes)
		if !ok {
			t.Fatalf("restored %s engine lost the Extremes capability", gc.problem)
		}
		right, wrong := ex.MinItem, ex.MaxItem
		if gc.problem == MaxFrequencyProblem {
			right, wrong = ex.MaxItem, ex.MinItem
		}
		if _, _, err := right(); err != nil {
			t.Fatalf("extremes query on restored solver: %v", err)
		}
		if _, _, err := wrong(); !errors.Is(err, ErrWrongExtreme) {
			t.Fatalf("wrong-side query = %v, want ErrWrongExtreme", err)
		}
		if err := hh.Insert(7); err != nil {
			t.Fatalf("in-universe Insert on restored solver: %v", err)
		}
		if err := hh.Insert(1 << 40); err == nil {
			t.Fatal("out-of-universe Insert succeeded on restored extremes solver")
		}
	default:
		rep := hh.Report()
		found := false
		for _, r := range rep {
			if r.Item == 7 {
				found = true
			}
		}
		if !found {
			t.Fatalf("planted heavy item 7 missing from restored report %v", rep)
		}
		// The restored solver must remain usable.
		if err := hh.Insert(7); err != nil {
			t.Fatalf("Insert on restored solver: %v", err)
		}
	}
}

// TestLegacyWindowCheckpoints: the committed PR 3/4-era windowed golden
// bytes — whose nested window snapshots are version 1, with no arrival
// stamps, and whose tag-5 shard container predates the accepted-items
// field — must keep decoding through the universal Unmarshal. They
// restore with share accounting reset: the extrapolated fold stays
// configured (Extrapolated=true on tag 5) but has no usable spans, so
// it reports with legacy weights, and ShareSkew reads 1 until fresh
// traffic re-establishes the accounting.
func TestLegacyWindowCheckpoints(t *testing.T) {
	for _, tc := range []struct {
		file    string
		tag     byte
		sharder bool
	}{
		{file: "tag4_windowed_v1.bin", tag: tagWindowed},
		{file: "tag5_sharded_windowed_v1.bin", tag: tagShardedWindowed, sharder: true},
	} {
		t.Run(tc.file, func(t *testing.T) {
			blob, err := os.ReadFile(filepath.Join("testdata", "checkpoints", tc.file))
			if err != nil {
				t.Fatalf("legacy golden file missing (it is frozen history — never regenerate it): %v", err)
			}
			if blob[0] != tc.tag {
				t.Fatalf("tag = %d, want %d", blob[0], tc.tag)
			}
			hh, err := Unmarshal(blob)
			if err != nil {
				t.Fatalf("PR 3/4-era checkpoint no longer decodes: %v", err)
			}
			defer hh.Close()
			win, ok := hh.(Windower)
			if !ok {
				t.Fatal("restored solver lost the Windower capability")
			}
			st := win.WindowStats()
			if st.ShareSkew != 1 {
				t.Errorf("reset share accounting must read ShareSkew 1, got %g", st.ShareSkew)
			}
			if st.Extrapolated != tc.sharder {
				t.Errorf("Extrapolated = %v, want %v (extrapolation is config, the reset only clears the spans)",
					st.Extrapolated, tc.sharder)
			}
			if _, ok := hh.(Sharder); ok != tc.sharder {
				t.Fatalf("Sharder = %v, want %v", ok, tc.sharder)
			}
			rep := hh.Report()
			found := false
			for _, r := range rep {
				if r.Item == 7 {
					found = true
				}
			}
			if !found {
				t.Fatalf("planted heavy item 7 missing from legacy restore: %v", rep)
			}
			// The restored solver must keep ingesting and re-checkpoint
			// in the current (v2) codec.
			if err := hh.Insert(7); err != nil {
				t.Fatal(err)
			}
			if _, err := hh.MarshalBinary(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointInterchange: bytes produced by the deprecated API
// restore via the universal Unmarshal, and bytes produced by the new
// front door restore via the deprecated per-type functions — for every
// container tag, with identical reports on both sides, and a
// restore→re-marshal cycle that reproduces the original bytes exactly
// (tags 1–6 must stay byte-identical across the problem-keyed
// refactor; the pool row lives in its own subtest below).
func TestCheckpointInterchange(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.file, func(t *testing.T) {
			oldBlob, err := gc.build()
			if err != nil {
				t.Fatal(err)
			}

			// Old bytes → new API.
			viaNew, err := Unmarshal(oldBlob)
			if err != nil {
				t.Fatalf("Unmarshal(old bytes): %v", err)
			}
			defer viaNew.Close()

			// New API bytes → old decoders.
			newBlob, err := viaNew.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(newBlob, oldBlob) {
				t.Fatalf("restore→re-marshal changed the bytes: %d in, %d out", len(oldBlob), len(newBlob))
			}
			var viaOldReport []ItemEstimate
			switch gc.tag {
			case tagOptimal, tagSimple:
				old, err := UnmarshalListHeavyHitters(newBlob)
				if err != nil {
					t.Fatalf("UnmarshalListHeavyHitters(new bytes): %v", err)
				}
				viaOldReport = old.Report()
			case tagSharded, tagShardedWindowed:
				old, err := UnmarshalShardedListHeavyHitters(newBlob, 0, 0)
				if err != nil {
					t.Fatalf("UnmarshalShardedListHeavyHitters(new bytes): %v", err)
				}
				defer old.Close()
				viaOldReport = old.Report()
			case tagWindowed:
				old, err := UnmarshalWindowedListHeavyHitters(newBlob)
				if err != nil {
					t.Fatalf("UnmarshalWindowedListHeavyHitters(new bytes): %v", err)
				}
				viaOldReport = old.Report()
			case tagBorda, tagMaximin, tagMinimum, tagMaximum:
				// No deprecated per-type decoder exists for the problem
				// engines; the interchange contract is the redirect (the
				// serial decoder names Unmarshal) plus round-trip report
				// stability through the universal door.
				if _, err := UnmarshalListHeavyHitters(newBlob); err == nil ||
					!strings.Contains(err.Error(), "use Unmarshal") {
					t.Fatalf("deprecated decoder on problem bytes = %v, want a redirect to Unmarshal", err)
				}
				again, err := Unmarshal(newBlob)
				if err != nil {
					t.Fatalf("Unmarshal(round-trip bytes): %v", err)
				}
				defer again.Close()
				viaOldReport = again.Report()
			}
			if fmt.Sprint(viaNew.Report()) != fmt.Sprint(viaOldReport) {
				t.Fatalf("old/new restores diverge:\n%v\n%v", viaNew.Report(), viaOldReport)
			}
		})
	}

	t.Run("tag6_pool", func(t *testing.T) {
		defaults := WithTenantDefaults(
			WithEps(0.05), WithPhi(0.2), WithDelta(0.05),
			WithStreamLength(4000), WithUniverse(1<<20), WithSeed(42))
		p, err := NewPool(defaults)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.InsertBatch("golden", goldenStream(2000)); err != nil {
			t.Fatal(err)
		}
		blob, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if blob[0] != tagPool {
			t.Fatalf("pool tag = %d, want %d", blob[0], tagPool)
		}
		restored, err := UnmarshalPool(blob, defaults)
		if err != nil {
			t.Fatal(err)
		}
		defer restored.Close()
		again, err := restored.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, blob) {
			t.Fatalf("pool restore→re-marshal changed the bytes: %d in, %d out", len(blob), len(again))
		}
	})
}

// TestDefaultProblemBytesUnchanged is the tentpole's byte-compatibility
// contract, in two layers per heavy-hitters container shape: spelling
// out the default — WithProblem(HeavyHittersProblem) — changes nothing
// about what New builds (byte-identical checkpoints), and both match
// the deprecated per-type constructors where those can be built
// deterministically (tags 1–4; the deprecated sharded-windowed API has
// no clock injection, so its arrival stamps defeat byte comparison).
func TestDefaultProblemBytesUnchanged(t *testing.T) {
	const n = 2000
	front := func(explicit bool, extra ...Option) []byte {
		t.Helper()
		opts := []Option{
			WithEps(0.05), WithPhi(0.2), WithDelta(0.05),
			WithStreamLength(4000), WithUniverse(1 << 20), WithSeed(42),
		}
		if explicit {
			opts = append(opts, WithProblem(HeavyHittersProblem))
		}
		opts = append(opts, extra...)
		hh, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer hh.Close()
		if err := hh.InsertBatch(goldenStream(n)); err != nil {
			t.Fatal(err)
		}
		blob, err := hh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	for _, gc := range goldenCases() {
		var extra []Option
		switch gc.tag {
		case tagOptimal:
			extra = []Option{WithAlgorithm(AlgorithmOptimal)}
		case tagSimple:
			extra = []Option{WithAlgorithm(AlgorithmSimple)}
		case tagSharded:
			extra = []Option{WithAlgorithm(AlgorithmSimple), WithShards(2)}
		case tagWindowed:
			extra = []Option{WithAlgorithm(AlgorithmSimple),
				WithCountWindow(512, 4), WithClock(goldenClock)}
		case tagShardedWindowed:
			extra = []Option{WithAlgorithm(AlgorithmSimple), WithShards(2),
				WithCountWindow(512, 4), WithClock(goldenClock)}
		default:
			continue // problem tags have no implicit-default twin
		}
		implicit := front(false, extra...)
		explicit := front(true, extra...)
		if !bytes.Equal(implicit, explicit) {
			t.Errorf("%s: WithProblem(HeavyHittersProblem) changed the bytes (%d vs %d)",
				gc.file, len(implicit), len(explicit))
		}
		if gc.tag == tagShardedWindowed {
			continue // the deprecated twin cannot pin its clock
		}
		viaOld, err := gc.build()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(explicit, viaOld) {
			t.Errorf("%s: front-door bytes (%d) differ from deprecated-API bytes (%d)",
				gc.file, len(explicit), len(viaOld))
		}
	}
}

// TestUnmarshalRejectsGarbage: the universal decoder errors (never
// panics) on the malformed-prefix family the per-type decoders already
// reject.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, blob := range [][]byte{
		nil,
		{},
		{0},
		{1},
		{2, 0, 0},
		{3, 1, 2, 3},
		{4, 0xFF},
		{5},
		{7},
		{8, 0xFF},
		{9, 0, 0},
		{10},
		{99, 1, 2, 3},
	} {
		if _, err := Unmarshal(blob); err == nil {
			t.Errorf("Unmarshal(%v) succeeded on garbage", blob)
		}
	}
}

// TestUnmarshalUnknownTagError: an unrecognized tag names the valid tag
// range and the one decoder that lives outside it (UnmarshalPool), so
// an operator holding a mystery blob knows where to send it next.
func TestUnmarshalUnknownTagError(t *testing.T) {
	_, err := Unmarshal([]byte{42, 0, 0, 0})
	if err == nil {
		t.Fatal("Unmarshal accepted tag 42")
	}
	for _, want := range []string{"tag 42", "UnmarshalPool"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-tag error %q does not mention %q", err, want)
		}
	}
	// The pool tag itself redirects by name.
	if _, err := Unmarshal([]byte{6, 0, 0}); err == nil ||
		!strings.Contains(err.Error(), "UnmarshalPool") {
		t.Errorf("pool-tag error %v does not redirect to UnmarshalPool", err)
	}
}

// TestDeprecatedUnmarshalRedirects: the per-type decoders keep their
// container-mismatch redirect errors.
func TestDeprecatedUnmarshalRedirects(t *testing.T) {
	sharded, err := New(WithEps(0.05), WithPhi(0.2), WithStreamLength(1000),
		WithUniverse(1<<20), WithSeed(1), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	blob, err := sharded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalListHeavyHitters(blob); err == nil {
		t.Fatal("serial decoder accepted a sharded container")
	}
	if _, err := UnmarshalWindowedListHeavyHitters(blob); err == nil {
		t.Fatal("windowed decoder accepted a sharded container")
	}
	if _, err := UnmarshalShardedListHeavyHitters([]byte{tagOptimal, 0}, 0, 0); err == nil {
		t.Fatal("sharded decoder accepted a serial encoding")
	}
	var wantErr error = ErrIncompatibleMerge
	if !errors.Is(ErrIncompatibleMerge, wantErr) {
		t.Fatal("sentinel identity lost")
	}
}
