package l1hh

// Tests for the unified front door: New's construction scenarios and
// capability sets, the Insert error semantics (closed solvers refuse
// instead of silently dropping), the unified Stats snapshot, and the
// option validation rules.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// frontDoorScenarios enumerates every construction scenario New must
// cover, with the capability set each one promises.
type frontDoorScenario struct {
	name     string
	opts     []Option
	merger   bool
	windower bool
	flusher  bool
	pacable  bool
	sharder  bool
}

func frontDoorScenarios() []frontDoorScenario {
	base := []Option{
		WithEps(0.05), WithPhi(0.2), WithDelta(0.05),
		WithUniverse(1 << 20), WithAlgorithm(AlgorithmSimple), WithSeed(7),
	}
	with := func(extra ...Option) []Option { return append(append([]Option{}, base...), extra...) }
	return []frontDoorScenario{
		{name: "serial known-m", opts: with(WithStreamLength(4000)), merger: true},
		{name: "serial unknown-m", opts: with()},
		{name: "paced", opts: with(WithStreamLength(4000), WithPacedBudget(1)),
			merger: true, flusher: true, pacable: true},
		{name: "sharded", opts: with(WithStreamLength(4000), WithShards(2)),
			merger: true, flusher: true, sharder: true},
		{name: "windowed", opts: with(WithCountWindow(512, 4)), windower: true},
		{name: "sharded windowed", opts: with(WithShards(2), WithCountWindow(512, 4)),
			windower: true, flusher: true, sharder: true},
	}
}

// feedScenario pushes a deterministic skewed stream (id 7 at 50%).
func feedScenario(t *testing.T, hh HeavyHitters, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		x := uint64(1000 + i)
		if i%2 == 0 {
			x = 7
		}
		if err := hh.Insert(x); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

func TestNewScenarioCapabilities(t *testing.T) {
	for _, sc := range frontDoorScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			hh, err := New(sc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer hh.Close()
			if _, ok := hh.(Merger); ok != sc.merger {
				t.Errorf("Merger capability = %v, want %v", ok, sc.merger)
			}
			if _, ok := hh.(Windower); ok != sc.windower {
				t.Errorf("Windower capability = %v, want %v", ok, sc.windower)
			}
			if _, ok := hh.(Flusher); ok != sc.flusher {
				t.Errorf("Flusher capability = %v, want %v", ok, sc.flusher)
			}
			if _, ok := hh.(Pacable); ok != sc.pacable {
				t.Errorf("Pacable capability = %v, want %v", ok, sc.pacable)
			}
			if _, ok := hh.(Sharder); ok != sc.sharder {
				t.Errorf("Sharder capability = %v, want %v", ok, sc.sharder)
			}

			feedScenario(t, hh, 2000)
			if f, ok := hh.(Flusher); ok {
				f.Flush()
			}
			rep := hh.Report()
			found := false
			for _, r := range rep {
				if r.Item == 7 {
					found = true
				}
			}
			if !found {
				t.Fatalf("heavy item 7 missing from report %v", rep)
			}
			if hh.Eps() != 0.05 || hh.Phi() != 0.2 {
				t.Errorf("(eps, phi) = (%g, %g), want (0.05, 0.2)", hh.Eps(), hh.Phi())
			}
			if hh.ModelBits() <= 0 {
				t.Error("ModelBits must be positive")
			}
		})
	}
}

// TestNewMatchesDeprecatedConstructors: the front door and the
// deprecated per-type constructors are the same engine — identical
// seeds, identical reports, identical checkpoint bytes.
func TestNewMatchesDeprecatedConstructors(t *testing.T) {
	cfg := Config{
		Eps: 0.05, Phi: 0.2, Delta: 0.05,
		StreamLength: 4000, Universe: 1 << 20,
		Algorithm: AlgorithmSimple, Seed: 7,
	}
	newOpts := []Option{
		WithEps(cfg.Eps), WithPhi(cfg.Phi), WithDelta(cfg.Delta),
		WithStreamLength(cfg.StreamLength), WithUniverse(cfg.Universe),
		WithAlgorithm(cfg.Algorithm), WithSeed(cfg.Seed),
	}

	t.Run("serial", func(t *testing.T) {
		hh, err := New(newOpts...)
		if err != nil {
			t.Fatal(err)
		}
		old, err := NewListHeavyHitters(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			x := uint64(i % 37)
			hh.Insert(x)
			old.Insert(x)
		}
		if fmt.Sprint(hh.Report()) != fmt.Sprint(old.Report()) {
			t.Fatalf("reports diverge:\n%v\n%v", hh.Report(), old.Report())
		}
		a, err := hh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		b, err := old.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("checkpoint bytes differ between New and NewListHeavyHitters")
		}
	})

	t.Run("sharded", func(t *testing.T) {
		hh, err := New(append(append([]Option{}, newOpts...), WithShards(2))...)
		if err != nil {
			t.Fatal(err)
		}
		defer hh.Close()
		old, err := NewShardedListHeavyHitters(ShardedConfig{Config: cfg, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer old.Close()
		for i := 0; i < 2000; i++ {
			x := uint64(i % 37)
			if err := hh.Insert(x); err != nil {
				t.Fatal(err)
			}
			if err := old.Insert(x); err != nil {
				t.Fatal(err)
			}
		}
		if fmt.Sprint(hh.Report()) != fmt.Sprint(old.Report()) {
			t.Fatalf("sharded reports diverge")
		}
		a, _ := hh.MarshalBinary()
		b, _ := old.MarshalBinary()
		if string(a) != string(b) {
			t.Fatal("checkpoint bytes differ between New and NewShardedListHeavyHitters")
		}
	})

	t.Run("windowed", func(t *testing.T) {
		// Bucket metadata records wall-clock stamps, so byte-for-byte
		// checkpoint equality needs both engines on one frozen clock.
		frozen := time.Unix(1_700_000_000, 0)
		clock := func() time.Time { return frozen }
		hh, err := New(append(append([]Option{}, newOpts...),
			WithCountWindow(512, 4), WithClock(clock))...)
		if err != nil {
			t.Fatal(err)
		}
		old, err := NewWindowedListHeavyHitters(WindowConfig{
			Config: cfg, Window: 512, WindowBuckets: 4, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			x := uint64(i % 37)
			hh.Insert(x)
			old.Insert(x)
		}
		if fmt.Sprint(hh.Report()) != fmt.Sprint(old.Report()) {
			t.Fatalf("windowed reports diverge")
		}
		a, _ := hh.MarshalBinary()
		b, _ := old.MarshalBinary()
		if string(a) != string(b) {
			t.Fatal("checkpoint bytes differ between New and NewWindowedListHeavyHitters")
		}
	})
}

// TestInsertAfterCloseErrors is the regression test for the Insert
// error-semantics unification: closed solvers of EVERY construction
// scenario refuse inserts with ErrClosed instead of silently dropping
// them, while reports keep answering.
func TestInsertAfterCloseErrors(t *testing.T) {
	for _, sc := range frontDoorScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			hh, err := New(sc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			feedScenario(t, hh, 1000)
			lenBefore := hh.Len()
			if err := hh.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := hh.Insert(7); !errors.Is(err, ErrClosed) {
				t.Fatalf("Insert after Close = %v, want ErrClosed", err)
			}
			if err := hh.InsertBatch([]Item{7, 8}); !errors.Is(err, ErrClosed) {
				t.Fatalf("InsertBatch after Close = %v, want ErrClosed", err)
			}
			if got := hh.Len(); got != lenBefore {
				t.Fatalf("refused inserts changed Len: %d -> %d", lenBefore, got)
			}
			if rep := hh.Report(); len(rep) == 0 {
				t.Fatal("closed solver stopped reporting")
			}
			// Close is idempotent.
			if err := hh.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

// TestStatsSnapshot: the unified Stats carries the same numbers the
// interface methods report, for every scenario.
func TestStatsSnapshot(t *testing.T) {
	for _, sc := range frontDoorScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			hh, err := New(sc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer hh.Close()
			feedScenario(t, hh, 2000)
			if f, ok := hh.(Flusher); ok {
				f.Flush()
			}
			st := hh.Stats()
			if st.Eps != hh.Eps() || st.Phi != hh.Phi() {
				t.Errorf("Stats (eps,phi) = (%g,%g), methods say (%g,%g)", st.Eps, st.Phi, hh.Eps(), hh.Phi())
			}
			if st.Len != hh.Len() {
				t.Errorf("Stats.Len = %d, Len() = %d", st.Len, hh.Len())
			}
			if st.Items < st.Len && st.Window == nil {
				t.Errorf("Stats.Items = %d below Len %d", st.Items, st.Len)
			}
			if st.ModelBits <= 0 {
				t.Error("Stats.ModelBits must be positive")
			}
			if sc.sharder {
				if st.Shards != 2 {
					t.Errorf("Stats.Shards = %d, want 2", st.Shards)
				}
				if len(st.QueueDepths) != 2 {
					t.Errorf("Stats.QueueDepths = %v, want 2 entries", st.QueueDepths)
				}
			} else {
				if st.Shards != 1 {
					t.Errorf("Stats.Shards = %d, want 1", st.Shards)
				}
				if st.QueueDepths != nil {
					t.Errorf("Stats.QueueDepths = %v, want nil", st.QueueDepths)
				}
			}
			if sc.windower {
				if st.Window == nil {
					t.Fatal("windowed Stats lacks Window")
				}
				w := hh.(Windower)
				if st.Window.Covered != hh.Len() {
					t.Errorf("Window.Covered = %d, Len() = %d", st.Window.Covered, hh.Len())
				}
				if ws := w.WindowStats(); ws.Total != st.Window.Total {
					t.Errorf("WindowStats.Total = %d, Stats.Window.Total = %d", ws.Total, st.Window.Total)
				}
				if n, d, buckets := w.Window(); n == 0 && d == 0 || buckets <= 0 {
					t.Errorf("Window() geometry = (%d, %s, %d)", n, d, buckets)
				}
				if st.Window.Total != 2000 {
					t.Errorf("Window.Total = %d, want 2000", st.Window.Total)
				}
			} else if st.Window != nil {
				t.Errorf("unwindowed Stats carries Window: %+v", st.Window)
			}
		})
	}
}

// TestPacableBudget: the paced adapter echoes its budget and flushes on
// demand.
func TestPacableBudget(t *testing.T) {
	hh, err := New(
		WithEps(0.05), WithPhi(0.2), WithStreamLength(4000),
		WithUniverse(1<<20), WithAlgorithm(AlgorithmSimple), WithSeed(7),
		WithPacedBudget(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := hh.(Pacable)
	if p.PacedBudget() != 3 {
		t.Fatalf("PacedBudget = %d, want 3", p.PacedBudget())
	}
	feedScenario(t, hh, 2000)
	hh.(Flusher).Flush()
	if len(hh.Report()) == 0 {
		t.Fatal("paced solver reports nothing")
	}
}

// TestMergerCapability: same-options solvers fold via checkpoint bytes,
// CheckMerge does not mutate, and cross-kind folds refuse with
// ErrIncompatibleMerge.
func TestMergerCapability(t *testing.T) {
	opts := []Option{
		WithEps(0.05), WithPhi(0.2), WithStreamLength(4000),
		WithUniverse(1 << 20), WithAlgorithm(AlgorithmSimple), WithSeed(7),
	}
	for _, tc := range []struct {
		name  string
		extra []Option
	}{
		{name: "serial"},
		{name: "sharded", extra: []Option{WithShards(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			all := append(append([]Option{}, opts...), tc.extra...)
			a, err := New(all...)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := New(all...)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			for i := 0; i < 1000; i++ {
				a.Insert(7)
				b.Insert(7)
				b.Insert(uint64(100 + i%11))
			}
			cp, err := b.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			m := a.(Merger)
			if err := m.CheckMerge(cp); err != nil {
				t.Fatalf("CheckMerge: %v", err)
			}
			if got := a.Len(); got != 1000 {
				t.Fatalf("CheckMerge mutated: Len = %d, want 1000", got)
			}
			if err := m.Merge(cp); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if got := a.Len(); got != 3000 {
				t.Fatalf("merged Len = %d, want 3000", got)
			}
			rep := a.Report()
			if len(rep) == 0 || rep[0].Item != 7 {
				t.Fatalf("merged report %v, want item 7 on top", rep)
			}
		})
	}

	t.Run("cross-kind refuses", func(t *testing.T) {
		serial, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := New(append(append([]Option{}, opts...), WithShards(2))...)
		if err != nil {
			t.Fatal(err)
		}
		defer sharded.Close()
		shardedCP, err := sharded.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := serial.(Merger).Merge(shardedCP); !errors.Is(err, ErrIncompatibleMerge) {
			t.Fatalf("serial Merge(sharded cp) = %v, want ErrIncompatibleMerge", err)
		}
		serialCP, err := serial.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := sharded.(Merger).Merge(serialCP); err == nil {
			t.Fatal("sharded Merge(serial cp) succeeded")
		}
	})

	t.Run("mismatched seed refuses without mutating", func(t *testing.T) {
		a, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		reseeded := append(append([]Option{}, opts...), WithSeed(99))
		b, err := New(reseeded...)
		if err != nil {
			t.Fatal(err)
		}
		a.Insert(1)
		b.Insert(2)
		cp, _ := b.MarshalBinary()
		m := a.(Merger)
		if err := m.CheckMerge(cp); !errors.Is(err, ErrIncompatibleMerge) {
			t.Fatalf("CheckMerge = %v, want ErrIncompatibleMerge", err)
		}
		if err := m.Merge(cp); !errors.Is(err, ErrIncompatibleMerge) {
			t.Fatalf("Merge = %v, want ErrIncompatibleMerge", err)
		}
		if a.Len() != 1 {
			t.Fatalf("refused merge mutated the target: Len = %d", a.Len())
		}
	})
}

// TestUnknownLengthSolver: no WithStreamLength → Theorem 7 machinery,
// not serializable, not a Merger.
func TestUnknownLengthSolver(t *testing.T) {
	hh, err := New(WithEps(0.05), WithPhi(0.2), WithUniverse(1<<20), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	feedScenario(t, hh, 5000)
	if _, err := hh.MarshalBinary(); err == nil {
		t.Fatal("unknown-length solver serialized")
	}
	if _, ok := hh.(Merger); ok {
		t.Fatal("unknown-length solver claims Merger")
	}
	if len(hh.Report()) == 0 {
		t.Fatal("no report")
	}
}

// TestWithClock drives a time window deterministically through an
// injected clock, including across a checkpoint restore with WithClock.
func TestWithClock(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	opts := []Option{
		WithEps(0.05), WithPhi(0.2), WithUniverse(1 << 20),
		WithAlgorithm(AlgorithmSimple), WithSeed(7),
		WithStreamLength(1000), WithTimeWindow(time.Minute, 4), WithClock(clock),
	}
	hh, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		hh.Insert(1)
	}
	now = now.Add(2 * time.Minute) // everything ages out
	for i := 0; i < 10; i++ {
		hh.Insert(2)
	}
	rep := hh.Report()
	for _, r := range rep {
		if r.Item == 1 {
			t.Fatalf("retired item 1 still reported: %v", rep)
		}
	}
	st := hh.(Windower).WindowStats()
	if st.Retired == 0 {
		t.Fatalf("nothing retired after the clock jump: %+v", st)
	}

	// Restore on the same fake clock: the window must not retire the
	// live mass against the real wall clock.
	blob, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(blob, WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != hh.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), hh.Len())
	}
	if _, ok := restored.(Windower); !ok {
		t.Fatal("restored time window lost the Windower capability")
	}
}

// TestNewValidation: structurally impossible option combinations error
// with actionable messages.
func TestNewValidation(t *testing.T) {
	base := []Option{WithEps(0.05), WithPhi(0.2)}
	cases := []struct {
		name string
		opts []Option
	}{
		{"missing eps", []Option{WithPhi(0.2)}},
		{"missing phi", []Option{WithEps(0.05)}},
		{"both windows", append(base, WithCountWindow(100, 0), WithTimeWindow(time.Second, 0), WithStreamLength(100))},
		{"clock without window", append(base, WithClock(time.Now))},
		{"queue depth without shards", append(base, WithQueueDepth(8))},
		{"max batch without shards", append(base, WithMaxBatch(8))},
		{"paced without length", append(base, WithPacedBudget(1))},
		{"time window without length", append(base, WithTimeWindow(time.Second, 0))},
		{"zero count window", append(base, WithCountWindow(0, 0))},
		{"negative shards", append(base, WithShards(-1))},
		{"zero stream length", append(base, WithStreamLength(0))},
		{"nil option", append(base, nil)},
		{"nil clock", append(base, WithClock(nil))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.opts...); err == nil {
				t.Fatal("New accepted an invalid combination")
			}
		})
	}
}

// TestUnmarshalOptionValidation: Unmarshal accepts runtime options only,
// and only where the container can use them.
func TestUnmarshalOptionValidation(t *testing.T) {
	serial, err := New(WithEps(0.05), WithPhi(0.2), WithStreamLength(1000),
		WithUniverse(1<<20), WithAlgorithm(AlgorithmSimple), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	serialCP, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(WithEps(0.05), WithPhi(0.2), WithStreamLength(1000),
		WithUniverse(1<<20), WithAlgorithm(AlgorithmSimple), WithSeed(7), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	shardedCP, err := sharded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Unmarshal(serialCP, WithEps(0.1)); err == nil {
		t.Fatal("Unmarshal accepted a problem-parameter option")
	}
	if _, err := Unmarshal(serialCP, WithQueueDepth(4)); err == nil {
		t.Fatal("Unmarshal accepted WithQueueDepth on a serial checkpoint")
	}
	if _, err := Unmarshal(shardedCP, WithClock(time.Now)); err == nil {
		t.Fatal("Unmarshal accepted WithClock on an unwindowed sharded checkpoint")
	}

	// A paced sharded engine's checkpoint (tag 3, pacing not serialized)
	// re-applies per-shard pacing via the same runtime option serial
	// restores use; reports must match the unpaced restore exactly.
	pacedSharded, err := Unmarshal(shardedCP, WithPacedBudget(1))
	if err != nil {
		t.Fatalf("Unmarshal(sharded, paced): %v", err)
	}
	defer pacedSharded.Close()
	plainSharded, err := Unmarshal(shardedCP)
	if err != nil {
		t.Fatal(err)
	}
	defer plainSharded.Close()
	for i := 0; i < 500; i++ {
		pacedSharded.Insert(uint64(i % 13))
		plainSharded.Insert(uint64(i % 13))
	}
	if fmt.Sprint(pacedSharded.Report()) != fmt.Sprint(plainSharded.Report()) {
		t.Fatal("paced sharded restore diverges from unpaced restore")
	}

	// Windowed sharded frames serialize their own budget: the runtime
	// option stays rejected there.
	shardedWin, err := New(WithEps(0.05), WithPhi(0.2), WithUniverse(1<<20),
		WithAlgorithm(AlgorithmSimple), WithSeed(7), WithShards(2), WithCountWindow(128, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer shardedWin.Close()
	winCP, err := shardedWin.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(winCP, WithPacedBudget(1)); err == nil {
		t.Fatal("Unmarshal accepted WithPacedBudget on a windowed sharded checkpoint")
	}

	// WithRawShardWindows is runtime tuning for tag-5 COUNT windows
	// only: serial/plain-sharded containers reject it outright, and a
	// time-window tag-5 container rejects it too (mirroring New) — time
	// windows never extrapolate, so silently accepting would mislead.
	if _, err := Unmarshal(serialCP, WithRawShardWindows()); err == nil {
		t.Fatal("Unmarshal accepted WithRawShardWindows on a serial checkpoint")
	}
	if _, err := Unmarshal(shardedCP, WithRawShardWindows()); err == nil {
		t.Fatal("Unmarshal accepted WithRawShardWindows on an unwindowed sharded checkpoint")
	}
	if _, err := Unmarshal(winCP, WithRawShardWindows()); err != nil {
		t.Fatalf("Unmarshal rejected WithRawShardWindows on a count-window checkpoint: %v", err)
	}
	now := time.Unix(3000, 0)
	timeWin, err := New(WithEps(0.05), WithPhi(0.2), WithUniverse(1<<20),
		WithAlgorithm(AlgorithmSimple), WithSeed(7), WithStreamLength(1000),
		WithShards(2), WithTimeWindow(time.Hour, 4), WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	defer timeWin.Close()
	timeCP, err := timeWin.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(timeCP, WithRawShardWindows()); err == nil {
		t.Fatal("Unmarshal accepted WithRawShardWindows on a time-window checkpoint")
	}

	// The valid runtime pairings work.
	hh, err := Unmarshal(shardedCP, WithQueueDepth(4), WithMaxBatch(128))
	if err != nil {
		t.Fatalf("Unmarshal(sharded, queue opts): %v", err)
	}
	hh.Close()
	paced, err := Unmarshal(serialCP, WithPacedBudget(2))
	if err != nil {
		t.Fatalf("Unmarshal(serial, paced): %v", err)
	}
	if p, ok := paced.(Pacable); !ok || p.PacedBudget() != 2 {
		t.Fatal("restored serial solver did not re-apply pacing")
	}
}

// TestUnmarshalScenarios: every serializable construction scenario
// round-trips through the universal Unmarshal with its capability set
// and report intact.
func TestUnmarshalScenarios(t *testing.T) {
	for _, sc := range frontDoorScenarios() {
		if sc.name == "serial unknown-m" {
			continue // not serializable
		}
		t.Run(sc.name, func(t *testing.T) {
			hh, err := New(sc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer hh.Close()
			feedScenario(t, hh, 2000)
			blob, err := hh.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Unmarshal(blob)
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if fmt.Sprint(restored.Report()) != fmt.Sprint(hh.Report()) {
				t.Fatal("restored report diverges")
			}
			if restored.Len() != hh.Len() {
				t.Fatalf("restored Len = %d, want %d", restored.Len(), hh.Len())
			}
			if restored.Eps() != hh.Eps() || restored.Phi() != hh.Phi() {
				t.Fatalf("restored (eps,phi) = (%g,%g), want (%g,%g)",
					restored.Eps(), restored.Phi(), hh.Eps(), hh.Phi())
			}
			if _, ok := restored.(Windower); ok != sc.windower {
				t.Errorf("restored Windower = %v, want %v", ok, sc.windower)
			}
			if _, ok := restored.(Sharder); ok != sc.sharder {
				t.Errorf("restored Sharder = %v, want %v", ok, sc.sharder)
			}
			// Pacing is runtime tuning: restored solvers are unpaced unless
			// WithPacedBudget is passed, so Merger is the only capability
			// that must survive serialization by itself.
			if sc.name != "paced" {
				if _, ok := restored.(Merger); ok != sc.merger {
					t.Errorf("restored Merger = %v, want %v", ok, sc.merger)
				}
			}
		})
	}
}
