package l1hh

// solver.go — the unified front door. New composes the engine stack for
// whichever Problem the options select (heavy hitters by default; the
// voting and frequency-extreme problems via WithProblem — see
// problems.go) behind the HeavyHitters interface; Unmarshal restores
// any checkpoint container (tags 1–5 heavy hitters, 7–10 problem
// engines) behind the same interface. Optional behaviours are small
// capability interfaces (Merger, Windower, Flusher, Pacable, Sharder,
// Voter, Extremes, PointQuerier) discovered by type assertion, never by
// switching on concrete types — DESIGN.md §9 and §14 document the
// contract.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/merge"
	"repro/internal/rng"
	"repro/internal/shard"
)

// ErrClosed is returned by Insert and InsertBatch after Close; test with
// errors.Is. Reports, stats and checkpoints still work on a closed
// solver.
var ErrClosed = shard.ErrClosed

// ErrSaturated is returned by Shedder.InsertBatchBounded when a shard
// ingest queue stayed full for the whole bounded wait: the offered load
// exceeds what the shard workers drain, and the caller should back off
// and retry (the batch was not fully enqueued — see Shedder for the
// delivery semantics). Test with errors.Is.
var ErrSaturated = shard.ErrSaturated

// HeavyHitters is the one interface every (ε,ϕ)-heavy hitters solver in
// this package presents, regardless of how New composed it (serial,
// paced, windowed, sharded, or sharded+windowed). Construction scenarios
// differ only in the capability interfaces the returned value additionally
// satisfies — Merger, Windower, Flusher, Pacable, Sharder.
//
// Concurrency: only solvers that satisfy Sharder accept Insert and
// InsertBatch from multiple goroutines; all other methods of those
// solvers are barriers that may run concurrently with ingest. Solvers
// without Sharder are single-owner.
type HeavyHitters interface {
	// Insert processes one stream item. It returns ErrClosed after
	// Close; a nil error means the item was accepted.
	Insert(x Item) error
	// InsertBatch processes a batch of items, the amortized fast path on
	// concurrent solvers. The input slice is not retained.
	InsertBatch(items []Item) error
	// Report returns the heavy hitters with frequency estimates in
	// decreasing-estimate order, under the (ε,ϕ) guarantees of the
	// composed engines (DESIGN.md §2, §3, §8).
	Report() []ItemEstimate
	// Len returns the stream length a Report answers for: items
	// processed so far, or the covered mass for windowed solvers.
	Len() uint64
	// Eps returns the additive-error parameter ε the solver was built
	// with (preserved across checkpoint restores).
	Eps() float64
	// Phi returns the heaviness threshold ϕ the solver was built with
	// (preserved across checkpoint restores).
	Phi() float64
	// Stats returns one coherent snapshot of the solver's operational
	// state. On concurrent solvers it is a barrier.
	Stats() Stats
	// ModelBits reports the sketch size in bits under the paper's
	// accounting model (DESIGN.md §4); aggregates are honest (K shards
	// cost K sketches, a B-bucket window costs B+1).
	ModelBits() int64
	// MarshalBinary checkpoints the complete solver state; Unmarshal
	// restores it. Unknown-stream-length solvers are not serializable
	// and return an error.
	MarshalBinary() ([]byte, error)
	// Close stops ingest (draining any queues); Insert then returns
	// ErrClosed, while Report, Stats and MarshalBinary keep working.
	// Idempotent.
	Close() error
}

// Stats is the unified operational snapshot of any HeavyHitters solver,
// replacing the per-type accessor scatter of the deprecated facades. On
// concurrent solvers it is collected under a single barrier, so the
// fields are mutually coherent.
type Stats struct {
	// Items is the number of items accepted so far. On sharded solvers
	// some may still sit in ingest queues (Items ≥ Len); everywhere else
	// Items counts every insert ever made, including mass that has aged
	// out of a window.
	Items uint64
	// Len is the stream length a Report answers for: processed items,
	// or the covered mass under a window.
	Len uint64
	// Eps is the additive-error parameter ε.
	Eps float64
	// Phi is the heaviness threshold ϕ.
	Phi float64
	// Shards is the partition width; 1 for single-owner solvers.
	Shards int
	// QueueDepths is the per-shard ingest queue occupancy in batches;
	// nil for single-owner solvers.
	QueueDepths []int
	// ModelBits is the sketch size under the paper's accounting.
	ModelBits int64
	// Window describes the sliding-window coverage; nil when the solver
	// answers for the whole stream.
	Window *WindowStats
	// ObservedEps is the worst per-item error fraction the accuracy
	// sentinel measured on the most recently audited report; 0 without
	// WithAccuracySentinel. Includes sampling noise (see SentinelStats).
	ObservedEps float64
	// Sentinel describes the accuracy sentinel's audit state; nil
	// without WithAccuracySentinel.
	Sentinel *SentinelStats
}

// Merger is the capability of folding another node's checkpoint into
// the live solver, so a fleet ingesting slices of one logical stream
// can be combined into a global summary (DESIGN.md §7). Implemented by
// known-stream-length serial and sharded solvers; windowed solvers are
// never Mergers (two nodes' windows cover different wall-clock slices —
// DESIGN.md §8).
type Merger interface {
	// CheckMerge reports whether Merge(checkpoint) would succeed,
	// without mutating anything. Incompatibility (different parameters,
	// seeds, partitions, or container kinds) wraps ErrIncompatibleMerge.
	CheckMerge(checkpoint []byte) error
	// Merge folds the checkpoint into the live solver so Report answers
	// for the concatenation of both streams. Failure is atomic: on any
	// error the live state is unchanged.
	Merge(checkpoint []byte) error
}

// Windower is the capability of answering for a sliding window rather
// than the whole stream. Implemented by windowed solvers (serial and
// sharded).
type Windower interface {
	// WindowStats describes the current coverage: covered/retired mass,
	// live bucket count, and the age of the oldest covered item. On a
	// sharded window the per-shard statistics are summed (Span is the
	// maximum).
	WindowStats() WindowStats
	// Window returns the configured geometry: the count window w (0 for
	// time windows), the duration d (0 for count windows), and the
	// per-window bucket granularity.
	Window() (w uint64, d time.Duration, buckets int)
}

// Flusher is the capability of forcing buffered work through: Flush
// blocks until every accepted item has reached its engine (shard ingest
// queues, paced-insert queues). Report and MarshalBinary flush
// implicitly; Flush exists for callers that want the barrier alone.
type Flusher interface {
	// Flush blocks until every accepted item has been applied.
	Flush()
}

// Pacable is the capability of bounded per-insert work: the solver runs
// the paper's §3.1 de-amortization, so no single Insert performs more
// than the configured budget of table operations.
type Pacable interface {
	// PacedBudget returns the per-insert work budget the solver was
	// built with (WithPacedBudget).
	PacedBudget() int
}

// Sharder is the capability marker for concurrent ingest: solvers that
// satisfy it accept Insert and InsertBatch from any number of
// goroutines. Callers that serve multi-goroutine traffic (cmd/hhd)
// assert it instead of trusting configuration.
type Sharder interface {
	// Shards returns the partition width.
	Shards() int
}

// Shedder is the capability of bounded-wait ingest with load shedding,
// for servers that must never park a handler goroutine on a full shard
// queue (cmd/hhd answers 429 + Retry-After from it — DESIGN.md §12).
// Implemented by the sharded containers; single-owner solvers apply
// items inline and have no queue to saturate.
//
// Delivery semantics: a call that returns ErrSaturated may have
// enqueued a prefix of its batches (those routed to non-saturated
// shards). Retrying the whole batch is therefore at-least-once —
// duplicates are possible, bounded by one call's items per shed.
type Shedder interface {
	// InsertBatchBounded inserts like InsertBatch but returns
	// ErrSaturated instead of blocking once a shard queue stays full
	// past wait (the budget covers the whole call).
	InsertBatchBounded(items []Item, wait time.Duration) error
	// SpareCapacity reports the smallest spare ingest-queue capacity
	// across the shards, in batches; 0 means a queue is full. Racy —
	// a monitoring probe, not a reservation.
	SpareCapacity() int
}

// New builds a heavy hitters solver from functional options — the one
// front door for every construction scenario:
//
//	l1hh.New(l1hh.WithEps(0.01), l1hh.WithPhi(0.05))                    // serial, unknown length
//	l1hh.New(..., l1hh.WithStreamLength(1e8))                           // serial, known length (mergeable, serializable)
//	l1hh.New(..., l1hh.WithStreamLength(1e8), l1hh.WithPacedBudget(1))  // strict O(1) worst-case inserts
//	l1hh.New(..., l1hh.WithShards(8))                                   // concurrent sharded ingest
//	l1hh.New(..., l1hh.WithCountWindow(1e6, 64))                        // heavy hitters of the last 10⁶ items
//	l1hh.New(..., l1hh.WithShards(8), l1hh.WithCountWindow(1e6, 64))    // both
//
// Options compose in any order; the engine stack is canonical — shards
// on the outside, windows in the middle, solver engines innermost
// (DESIGN.md §9). The returned value additionally satisfies the
// capability interfaces its composition supports.
//
// WithProblem switches the front door to one of the paper's related
// problems — the voting problems (BordaProblem, MaximinProblem; assert
// Voter) or the frequency extremes (MinFrequencyProblem,
// MaxFrequencyProblem; assert Extremes):
//
//	l1hh.New(l1hh.WithProblem(l1hh.BordaProblem),
//	         l1hh.WithCandidates(8), l1hh.WithEps(0.05), l1hh.WithPhi(0.6))
//
// Each problem validates its own option subset; see problems.go and
// DESIGN.md §14 for the problem-keyed builder table.
func New(opts ...Option) (HeavyHitters, error) {
	st, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := st.validateNew(); err != nil {
		return nil, err
	}
	st.cfg.fill()
	return problemSpecs[st.problem].build(&st)
}

// buildHeavyHittersProblem composes the default (ε,ϕ)-heavy hitters
// engine stack — the HeavyHittersProblem row of the builder table.
func buildHeavyHittersProblem(st *settings) (HeavyHitters, error) {
	switch {
	case st.sharded():
		eng, err := buildSharded(ShardedConfig{
			Config:          st.cfg,
			Shards:          st.shards,
			QueueDepth:      st.queueDepth,
			MaxBatch:        st.maxBatch,
			Window:          st.window,
			WindowDuration:  st.windowDur,
			WindowBuckets:   st.windowBuckets,
			RawShardWindows: st.rawWindows,
		}, st.clock, st.shardHooks())
		if err != nil {
			return nil, err
		}
		return wrapSharded(eng, st.newSentinel()), nil
	case st.windowed():
		eng, err := buildWindowed(WindowConfig{
			Config:         st.cfg,
			Window:         st.window,
			WindowDuration: st.windowDur,
			WindowBuckets:  st.windowBuckets,
			Clock:          st.clock,
		})
		if err != nil {
			return nil, err
		}
		return newWindowedHH(eng), nil
	default:
		eng, err := buildSerial(st.cfg)
		if err != nil {
			return nil, err
		}
		return wrapSerial(eng, st.cfg.StreamLength > 0, st.cfg.PacedBudget, st.newSentinel()), nil
	}
}

// shardHooks converts the public ingest-observer callbacks into the
// internal shard hook set.
func (st *settings) shardHooks() shard.Hooks {
	return shard.Hooks{
		EnqueueWait: st.timings.EnqueueWait,
		BatchApply:  st.timings.BatchApply,
	}
}

// newSentinel builds the accuracy sentinel when requested (nil
// otherwise — every sentinel call site is nil-safe). The shadow
// sampler's randomness derives from the solver seed, so audited runs
// stay reproducible.
func (st *settings) newSentinel() *sentinel {
	if !st.has(optSentinel) {
		return nil
	}
	return newSentinel(st.sentinelRate, rng.New(st.cfg.Seed).Split())
}

// Unmarshal restores a solver from any checkpoint this package produces
// — serial (tags 1–2), sharded (3), windowed (4), sharded+windowed (5),
// and the problem engines (Borda 7, maximin 8, ε-Minimum 9, ε-Maximum
// 10) — behind the HeavyHitters interface, with the same capability set
// the original had. Problem parameters live in the checkpoint; opts may
// carry runtime tuning only, and only where it applies (the problem
// engines take none):
//
//	WithQueueDepth, WithMaxBatch — sharded containers (3, 5)
//	WithPacedBudget             — serial solvers (1, 2) and plain
//	                              sharded containers (3), whose per-shard
//	                              engines are re-paced; windowed frames
//	                              (4, 5) serialize their own budget
//	WithClock                   — windowed containers (4, 5)
//	WithRawShardWindows         — sharded windowed containers (5); the
//	                              extrapolation opt-out is not serialized
//	WithIngestObserver          — sharded containers (3, 5);
//	                              instrumentation is never serialized
//
// Checkpoint bytes are interchangeable with the deprecated per-type
// Unmarshal functions in both directions.
func Unmarshal(data []byte, opts ...Option) (HeavyHitters, error) {
	st, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	if st.set&^runtimeOpts != 0 {
		return nil, errors.New("l1hh: Unmarshal accepts runtime options only (WithPacedBudget, WithQueueDepth, WithMaxBatch, WithClock, WithRawShardWindows, WithIngestObserver) — problem parameters come from the checkpoint")
	}
	if len(data) < 2 {
		return nil, errors.New("l1hh: truncated solver encoding")
	}
	switch data[0] {
	case tagOptimal, tagSimple:
		if err := st.rejectOpts(optQueueDepth|optMaxBatch|optClock|optRawWindows|optObserver, "a serial checkpoint"); err != nil {
			return nil, err
		}
		eng, err := unmarshalSerial(data)
		if err != nil {
			return nil, err
		}
		if st.has(optPaced) {
			p, ok := eng.engine.(core.Pacable)
			if !ok { // unreachable: tags 1–2 decode to pacable engines
				return nil, fmt.Errorf("l1hh: engine %T does not support pacing", eng.engine)
			}
			eng.applyPacing(st.cfg.PacedBudget, p)
		}
		return wrapSerial(eng, true, st.cfg.PacedBudget, nil), nil
	case tagSharded:
		if err := st.rejectOpts(optClock|optRawWindows, "a sharded checkpoint"); err != nil {
			return nil, err
		}
		eng, err := unmarshalSharded(data, st.queueDepth, st.maxBatch, nil, st.cfg.PacedBudget, false, st.shardHooks())
		if err != nil {
			return nil, err
		}
		return wrapSharded(eng, nil), nil
	case tagShardedWindowed:
		if err := st.rejectOpts(optPaced, "a sharded windowed checkpoint (the windowed frames serialize their own budget)"); err != nil {
			return nil, err
		}
		eng, err := unmarshalSharded(data, st.queueDepth, st.maxBatch, st.clock, 0, st.rawWindows, st.shardHooks())
		if err != nil {
			return nil, err
		}
		if st.has(optRawWindows) && eng.window == 0 {
			// Mirror New's validation: the opt-out only exists for count
			// windows, and silently accepting it here would let an
			// operator believe the raw fold is active on a time-window
			// container (which never extrapolates anyway).
			eng.Close()
			return nil, errors.New("l1hh: WithRawShardWindows does not apply to a time-window checkpoint (only count windows extrapolate)")
		}
		return wrapSharded(eng, nil), nil
	case tagWindowed:
		if err := st.rejectOpts(optQueueDepth|optMaxBatch|optPaced|optRawWindows|optObserver, "a windowed checkpoint"); err != nil {
			return nil, err
		}
		eng, err := unmarshalWindowed(data, st.clock)
		if err != nil {
			return nil, err
		}
		return newWindowedHH(eng), nil
	case tagBorda, tagMaximin, tagMinimum, tagMaximum:
		if err := st.rejectOpts(runtimeOpts, "a problem-engine checkpoint (the voting and extremes engines take no runtime tuning)"); err != nil {
			return nil, err
		}
		return unmarshalProblem(data)
	case tagPool:
		return nil, errors.New("l1hh: this is a multi-tenant pool checkpoint — restore it with UnmarshalPool")
	default:
		return nil, fmt.Errorf("l1hh: unrecognized solver tag %d — Unmarshal decodes tags %d–%d (serial, sharded, windowed, and the problem engines); the pool tag %d needs UnmarshalPool", data[0], tagOptimal, tagMaximum, tagPool)
	}
}

// rejectOpts errors when any of the given option bits were applied,
// naming the container kind that cannot use them.
func (st *settings) rejectOpts(bits uint32, kind string) error {
	if st.set&bits == 0 {
		return nil
	}
	return fmt.Errorf("l1hh: option does not apply to %s (runtime options are container-specific — see Unmarshal)", kind)
}

// wrapSerial picks the adapter whose capability set matches a serial
// engine: unknown-length solvers expose no extras, paced solvers add
// Flusher and Pacable, and every known-length solver is a Merger. sen
// is the optional accuracy sentinel (nil when not requested).
func wrapSerial(eng *ListHeavyHitters, known bool, budget int, sen *sentinel) HeavyHitters {
	switch {
	case !known:
		return &unknownSerialHH{newSerialBase(eng, sen)}
	case budget > 0 && eng.paced != nil:
		return &pacedSerialHH{serialHH: serialHH{newSerialBase(eng, sen)}, budget: budget}
	default:
		return &serialHH{newSerialBase(eng, sen)}
	}
}

// wrapSharded picks the adapter whose capability set matches a sharded
// container: windowed containers expose Windower, everything else is a
// Merger; both flush. sen is the optional accuracy sentinel (nil when
// not requested; never set on windowed containers).
func wrapSharded(eng *ShardedListHeavyHitters, sen *sentinel) HeavyHitters {
	if eng.Windowed() {
		return &shardedWindowedHH{shardedBase{s: eng}}
	}
	return &shardedHH{shardedBase{s: eng, sen: sen}}
}

// singleOwnerEngine is the method set the single-owner concrete engines
// share; *ListHeavyHitters and *WindowedListHeavyHitters both satisfy
// it, so one adapter base serves serial and windowed solvers.
type singleOwnerEngine interface {
	Insert(x Item)
	Report() []ItemEstimate
	Len() uint64
	Eps() float64
	Phi() float64
	Stats() Stats
	ModelBits() int64
	MarshalBinary() ([]byte, error)
}

// singleOwnerBase adapts a single-owner engine to the HeavyHitters
// interface: error-returning inserts with a closed state, delegation
// everywhere else. sen is the optional accuracy sentinel; every use is
// nil-safe, so the disabled path costs one nil check.
type singleOwnerBase struct {
	e      singleOwnerEngine
	sen    *sentinel
	closed bool
}

func (s *singleOwnerBase) Insert(x Item) error {
	if s.closed {
		return ErrClosed
	}
	s.e.Insert(x)
	s.sen.observe(x)
	return nil
}

func (s *singleOwnerBase) InsertBatch(items []Item) error {
	if s.closed {
		return ErrClosed
	}
	for _, x := range items {
		s.e.Insert(x)
	}
	s.sen.observeBatch(items)
	return nil
}

// Report additionally audits the result against the accuracy sentinel's
// shadow when one is installed.
func (s *singleOwnerBase) Report() []ItemEstimate {
	rep := s.e.Report()
	s.sen.check(rep, s.e.Eps(), s.e.Phi())
	return rep
}

func (s *singleOwnerBase) Len() uint64  { return s.e.Len() }
func (s *singleOwnerBase) Eps() float64 { return s.e.Eps() }
func (s *singleOwnerBase) Phi() float64 { return s.e.Phi() }

// Stats delegates to the engine and, when the accuracy sentinel is
// installed, attaches its audit snapshot.
func (s *singleOwnerBase) Stats() Stats {
	st := s.e.Stats()
	if s.sen != nil {
		ss := s.sen.snapshot()
		st.Sentinel = &ss
		st.ObservedEps = ss.ObservedEps
	}
	return st
}

func (s *singleOwnerBase) ModelBits() int64               { return s.e.ModelBits() }
func (s *singleOwnerBase) MarshalBinary() ([]byte, error) { return s.e.MarshalBinary() }

// Close stops ingest; Report, Stats and MarshalBinary keep working,
// mirroring the sharded drain semantics. Idempotent.
func (s *singleOwnerBase) Close() error {
	s.closed = true
	return nil
}

// serialBase is the single-owner base over a *ListHeavyHitters, keeping
// the concrete handle the merge and pacing paths need.
type serialBase struct {
	singleOwnerBase
	h *ListHeavyHitters
}

func newSerialBase(h *ListHeavyHitters, sen *sentinel) serialBase {
	return serialBase{singleOwnerBase: singleOwnerBase{e: h, sen: sen}, h: h}
}

// Close additionally flushes deferred paced work so the final state
// covers every accepted item.
func (s *serialBase) Close() error {
	if s.h.paced != nil {
		s.h.paced.Flush()
	}
	return s.singleOwnerBase.Close()
}

// unknownSerialHH is the adapter for unknown-stream-length solvers
// (Theorem 7 machinery): no Merger (staggered instances do not fold),
// no serialization.
type unknownSerialHH struct{ serialBase }

// serialHH is the adapter for known-length serial solvers; it adds the
// Merger and PointQuerier capabilities.
type serialHH struct{ serialBase }

// Estimate implements PointQuerier with the §3 per-item ε·m bound.
func (s *serialHH) Estimate(x Item) float64 { return s.h.Estimate(x) }

// CheckMerge implements Merger without mutating either solver.
func (s *serialHH) CheckMerge(checkpoint []byte) error {
	other, err := decodeSerialPeer(checkpoint)
	if err != nil {
		return err
	}
	return s.h.canMergeFrom(other)
}

// Merge implements Merger: it folds the checkpointed solver's state into
// the live one (DESIGN.md §7). A successful merge marks the accuracy
// sentinel incoherent — the folded stream was never sampled.
func (s *serialHH) Merge(checkpoint []byte) error {
	other, err := decodeSerialPeer(checkpoint)
	if err != nil {
		return err
	}
	if err := s.h.MergeFrom(other); err != nil {
		return err
	}
	s.sen.markForeign()
	return nil
}

// decodeSerialPeer decodes a checkpoint for serial merging, reporting
// container/solver kind mismatches as incompatibilities rather than
// decode errors.
func decodeSerialPeer(checkpoint []byte) (*ListHeavyHitters, error) {
	if len(checkpoint) >= 1 {
		switch checkpoint[0] {
		case tagSharded, tagShardedWindowed:
			return nil, merge.Incompatiblef("l1hh: cannot fold a sharded checkpoint into a serial solver")
		case tagWindowed:
			return nil, merge.Incompatiblef("l1hh: sliding-window states are not mergeable (DESIGN.md §8)")
		}
	}
	return unmarshalSerial(checkpoint)
}

// pacedSerialHH is the adapter for paced serial solvers; it adds Flusher
// and Pacable on top of the Merger capability.
type pacedSerialHH struct {
	serialHH
	budget int
}

// Flush implements Flusher: it drains the deferred-work queue so the
// inner tables reflect every accepted item.
func (s *pacedSerialHH) Flush() { s.h.paced.Flush() }

// PacedBudget implements Pacable.
func (s *pacedSerialHH) PacedBudget() int { return s.budget }

// windowedHH adapts a single-owner *WindowedListHeavyHitters; it adds
// the Windower capability.
type windowedHH struct {
	singleOwnerBase
	w *WindowedListHeavyHitters
}

func newWindowedHH(w *WindowedListHeavyHitters) *windowedHH {
	return &windowedHH{singleOwnerBase: singleOwnerBase{e: w}, w: w}
}

// WindowStats implements Windower.
func (s *windowedHH) WindowStats() WindowStats { return s.w.WindowStats() }

// Window implements Windower.
func (s *windowedHH) Window() (w uint64, d time.Duration, buckets int) { return s.w.Window() }

// shardedBase adapts a *ShardedListHeavyHitters: the concrete type
// already has the error-returning concurrent ingest path, so the base
// delegates and the two outer adapters add the honest capability set.
// sen is the optional accuracy sentinel; it serializes concurrent
// producers through its own mutex (amortized per batch), never through
// the engine.
type shardedBase struct {
	s   *ShardedListHeavyHitters
	sen *sentinel
}

func (s *shardedBase) Insert(x Item) error {
	if err := s.s.Insert(x); err != nil {
		return err
	}
	s.sen.observe(x)
	return nil
}

func (s *shardedBase) InsertBatch(items []Item) error {
	if err := s.s.InsertBatch(items); err != nil {
		return err
	}
	s.sen.observeBatch(items)
	return nil
}

// InsertBatchBounded implements Shedder. A saturated call marks the
// accuracy sentinel incoherent: the engines may have applied a prefix
// of the batch the shadow never sampled, so audits would report bogus
// violations.
func (s *shardedBase) InsertBatchBounded(items []Item, wait time.Duration) error {
	if err := s.s.InsertBatchBounded(items, wait); err != nil {
		if errors.Is(err, ErrSaturated) {
			s.sen.markForeign()
		}
		return err
	}
	s.sen.observeBatch(items)
	return nil
}

// SpareCapacity implements Shedder.
func (s *shardedBase) SpareCapacity() int { return s.s.SpareCapacity() }

// Report additionally audits the result against the accuracy sentinel's
// shadow when one is installed.
func (s *shardedBase) Report() []ItemEstimate {
	rep := s.s.Report()
	s.sen.check(rep, s.s.Eps(), s.s.Phi())
	return rep
}

func (s *shardedBase) Len() uint64  { return s.s.Len() }
func (s *shardedBase) Eps() float64 { return s.s.Eps() }
func (s *shardedBase) Phi() float64 { return s.s.Phi() }

// Stats delegates to the container and, when the accuracy sentinel is
// installed, attaches its audit snapshot.
func (s *shardedBase) Stats() Stats {
	st := s.s.Stats()
	if s.sen != nil {
		ss := s.sen.snapshot()
		st.Sentinel = &ss
		st.ObservedEps = ss.ObservedEps
	}
	return st
}

func (s *shardedBase) ModelBits() int64               { return s.s.ModelBits() }
func (s *shardedBase) MarshalBinary() ([]byte, error) { return s.s.MarshalBinary() }
func (s *shardedBase) Close() error                   { return s.s.Close() }

// Flush implements Flusher: it blocks until every accepted item has
// reached its shard engine.
func (s *shardedBase) Flush() { s.s.Flush() }

// Shards implements Sharder: sharded adapters are the concurrent-safe
// ones.
func (s *shardedBase) Shards() int { return s.s.Shards() }

// shardedHH is the adapter for non-windowed sharded containers; it adds
// the Merger and PointQuerier capabilities.
type shardedHH struct{ shardedBase }

// Estimate implements PointQuerier: hash partitioning routes every
// occurrence of x to one shard, so the owning shard's whole-stream
// estimate is the global one.
func (s *shardedHH) Estimate(x Item) float64 { return s.s.Estimate(x) }

// CheckMerge implements Merger without mutating any shard.
func (s *shardedHH) CheckMerge(checkpoint []byte) error {
	return s.s.checkMergeCheckpoint(checkpoint)
}

// Merge implements Merger, folding a peer node's checkpoint shard by
// shard (DESIGN.md §7); failure is atomic. A successful merge marks the
// accuracy sentinel incoherent — the folded stream was never sampled.
func (s *shardedHH) Merge(checkpoint []byte) error {
	if err := s.s.MergeCheckpoint(checkpoint); err != nil {
		return err
	}
	s.sen.markForeign()
	return nil
}

// shardedWindowedHH is the adapter for sharded containers whose shards
// run sliding windows; it adds the Windower capability (and, like every
// windowed solver, is deliberately not a Merger — DESIGN.md §8).
type shardedWindowedHH struct{ shardedBase }

// WindowStats implements Windower, summing the per-shard statistics.
func (s *shardedWindowedHH) WindowStats() WindowStats {
	st, _ := s.s.WindowStats()
	return st
}

// Window implements Windower.
func (s *shardedWindowedHH) Window() (w uint64, d time.Duration, buckets int) {
	return s.s.Window()
}
