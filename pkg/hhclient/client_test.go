package hhclient

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// step scripts one RoundTrip of the fault-injection transport.
type step struct {
	status     int           // HTTP status to return (0 means 200)
	body       string        // response body (JSON)
	retryAfter string        // Retry-After header value
	err        error         // transport-level error instead of a response
	started    chan struct{} // closed when the step is reached
	release    chan struct{} // when non-nil, RoundTrip blocks until closed
}

// faultTransport is a scripted http.RoundTripper: each request consumes
// the next step (default: 200 OK) and is recorded — decoded items for
// /ingest — so tests can pin exactly what was sent and resent.
type faultTransport struct {
	mu       sync.Mutex
	steps    []step
	requests [][]uint64
	paths    []string // EscapedPath of each request, in order
}

func (f *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var items []uint64
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		if err != nil {
			return nil, err
		}
		for len(b) >= 8 {
			items = append(items, binary.LittleEndian.Uint64(b))
			b = b[8:]
		}
	}
	f.mu.Lock()
	f.requests = append(f.requests, items)
	f.paths = append(f.paths, req.URL.EscapedPath())
	var st step
	if len(f.steps) > 0 {
		st = f.steps[0]
		f.steps = f.steps[1:]
	}
	f.mu.Unlock()
	if st.started != nil {
		close(st.started)
	}
	if st.release != nil {
		<-st.release
	}
	if st.err != nil {
		return nil, st.err
	}
	if st.status == 0 {
		st.status = http.StatusOK
	}
	hdr := http.Header{}
	if st.retryAfter != "" {
		hdr.Set("Retry-After", st.retryAfter)
	}
	return &http.Response{
		StatusCode: st.status,
		Header:     hdr,
		Body:       io.NopCloser(strings.NewReader(st.body)),
	}, nil
}

func (f *faultTransport) sent() [][]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]uint64(nil), f.requests...)
}

func (f *faultTransport) seenPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.paths...)
}

// newTestClient builds a client over a fault transport with an injected
// sleep that records requested delays instead of waiting.
func newTestClient(t *testing.T, ft *faultTransport, opts ...Option) (*Client, *[]time.Duration) {
	t.Helper()
	opts = append([]Option{
		WithHTTPClient(&http.Client{Transport: ft}),
		WithBatchSize(1 << 20), // tests flush explicitly unless they say otherwise
		WithFlushInterval(time.Hour),
		WithSeed(7),
	}, opts...)
	c, err := New("http://hhd.test", opts...)
	if err != nil {
		t.Fatal(err)
	}
	sleeps := new([]time.Duration)
	// The worker is the only sleeper, and Flush's ack channel orders its
	// writes before the test's reads — no lock needed.
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*sleeps = append(*sleeps, d)
		return ctx.Err()
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Close(ctx)
	})
	return c, sleeps
}

func addAll(t *testing.T, c *Client, items []uint64) {
	t.Helper()
	for _, it := range items {
		if err := c.Add(it); err != nil {
			t.Fatalf("Add(%d): %v", it, err)
		}
	}
}

func flush(t *testing.T, c *Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestSendHappyPath(t *testing.T) {
	ft := &faultTransport{}
	c, sleeps := newTestClient(t, ft)
	items := []uint64{1, 2, 3, 42}
	addAll(t, c, items)
	flush(t, c)
	st := c.Stats()
	if st.Acked != 4 || st.Dropped != 0 || st.Retried != 0 || st.Queued != 0 {
		t.Fatalf("stats after clean flush: %+v", st)
	}
	reqs := ft.sent()
	if len(reqs) != 1 || len(reqs[0]) != 4 || reqs[0][3] != 42 {
		t.Fatalf("sent %v, want one batch of the 4 items", reqs)
	}
	if len(*sleeps) != 0 {
		t.Fatalf("slept %v on the happy path", *sleeps)
	}
}

func TestRetry5xxBurstWithBackoff(t *testing.T) {
	ft := &faultTransport{steps: []step{
		{status: 503}, {status: 502}, {status: 500}, {},
	}}
	base, cap := 10*time.Millisecond, 2*time.Second
	c, sleeps := newTestClient(t, ft, WithBackoff(base, cap))
	addAll(t, c, []uint64{9, 8, 7})
	flush(t, c)
	st := c.Stats()
	if st.Acked != 3 || st.Dropped != 0 {
		t.Fatalf("stats after 5xx burst: %+v", st)
	}
	if st.Retried != 3 || st.RetriedItems != 9 {
		t.Fatalf("retried %d attempts / %d items, want 3 / 9", st.Retried, st.RetriedItems)
	}
	if got := len(ft.sent()); got != 4 {
		t.Fatalf("server saw %d requests, want 4", got)
	}
	// Exponential schedule with jitter: attempt n sleeps in
	// [base·2ⁿ/2, base·2ⁿ].
	if len(*sleeps) != 3 {
		t.Fatalf("slept %d times, want 3", len(*sleeps))
	}
	for n, d := range *sleeps {
		full := base << uint(n)
		if d < full/2 || d > full {
			t.Fatalf("sleep %d = %v, want within [%v, %v]", n, d, full/2, full)
		}
	}
}

func TestShed429TrimsAckedPrefixAndHonorsRetryAfter(t *testing.T) {
	ft := &faultTransport{steps: []step{
		{status: 429, retryAfter: "3", body: `{"error":"saturated","accepted":2}`},
		{},
	}}
	c, sleeps := newTestClient(t, ft)
	items := []uint64{10, 11, 12, 13, 14}
	addAll(t, c, items)
	flush(t, c)
	st := c.Stats()
	if st.Acked != 5 || st.Dropped != 0 {
		t.Fatalf("stats after shed: %+v", st)
	}
	if st.RetriedItems != 3 {
		t.Fatalf("RetriedItems = %d, want 3 (the unacked suffix)", st.RetriedItems)
	}
	reqs := ft.sent()
	if len(reqs) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(reqs))
	}
	if want := []uint64{12, 13, 14}; len(reqs[1]) != 3 || reqs[1][0] != want[0] {
		t.Fatalf("resend carried %v, want the unacked suffix %v", reqs[1], want)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want exactly the server's Retry-After of 3s", *sleeps)
	}
}

func TestTerminalErrorDropsWithoutRetry(t *testing.T) {
	ft := &faultTransport{steps: []step{
		{status: 400, body: `{"error":"binary body length not a multiple of 8"}`},
	}}
	c, sleeps := newTestClient(t, ft)
	addAll(t, c, []uint64{1, 2})
	flush(t, c)
	st := c.Stats()
	if st.Dropped != 2 || st.Acked != 0 || st.Retried != 0 {
		t.Fatalf("stats after terminal 400: %+v", st)
	}
	if len(*sleeps) != 0 || len(ft.sent()) != 1 {
		t.Fatal("client retried a terminal 4xx")
	}
	var ae *APIError
	if err := c.LastError(); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("LastError = %v, want *APIError with status 400", err)
	}
	if IsRetryable(c.LastError()) {
		t.Fatal("a 400 classified as retryable")
	}
}

func TestRetryBudgetExhaustedDrops(t *testing.T) {
	ft := &faultTransport{steps: []step{
		{status: 503}, {status: 503}, {status: 503},
	}}
	c, _ := newTestClient(t, ft, WithMaxRetries(2))
	addAll(t, c, []uint64{5})
	flush(t, c)
	st := c.Stats()
	if st.Dropped != 1 || st.Acked != 0 {
		t.Fatalf("stats after exhausted budget: %+v", st)
	}
	if st.Retried != 2 || len(ft.sent()) != 3 {
		t.Fatalf("retried %d times over %d requests, want 2 over 3", st.Retried, len(ft.sent()))
	}
	if !IsRetryable(c.LastError()) {
		t.Fatal("the final 503 should still classify as retryable")
	}
}

func TestTransportDropAndMidBodyResetRetry(t *testing.T) {
	ft := &faultTransport{steps: []step{
		{err: errors.New("connection refused")},        // dropped request
		{err: errors.New("connection reset mid-body")}, // torn mid-transfer
		{},
	}}
	c, _ := newTestClient(t, ft)
	addAll(t, c, []uint64{1, 2, 3})
	flush(t, c)
	st := c.Stats()
	if st.Acked != 3 || st.Dropped != 0 || st.Retried != 2 {
		t.Fatalf("stats after transport faults: %+v", st)
	}
	if len(ft.sent()) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(ft.sent()))
	}
}

func TestQueueBoundAndPartialAddBatch(t *testing.T) {
	// Park the worker inside a blocked request so the queue fills
	// deterministically behind it.
	started := make(chan struct{})
	release := make(chan struct{})
	ft := &faultTransport{steps: []step{{started: started, release: release}}}
	c, _ := newTestClient(t, ft, WithQueueSize(4), WithBatchSize(1))
	defer close(release)
	if err := c.Add(100); err != nil {
		t.Fatal(err)
	}
	<-started // worker now owns item 100 and is stuck in RoundTrip
	addAll(t, c, []uint64{1, 2, 3, 4})
	if err := c.Add(5); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Add past capacity = %v, want ErrQueueFull", err)
	}
	// AddBatch takes nothing and reports the bound the same way.
	if n, err := c.AddBatch([]uint64{6, 7}); n != 0 || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("AddBatch on full queue = (%d, %v)", n, err)
	}
	if st := c.Stats(); st.Enqueued != 5 || st.Queued != 5 {
		t.Fatalf("stats with full queue: %+v", st)
	}
}

func TestCloseFlushesAndRejectsLaterAdds(t *testing.T) {
	ft := &faultTransport{}
	c, _ := newTestClient(t, ft)
	addAll(t, c, []uint64{1, 2, 3})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := c.Stats()
	if st.Acked != 3 || st.Queued != 0 {
		t.Fatalf("stats after Close: %+v", st)
	}
	if err := c.Add(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
	if _, err := c.AddBatch([]uint64{9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddBatch after Close = %v, want ErrClosed", err)
	}
	if err := c.Flush(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestSizeFlushWithoutExplicitFlush(t *testing.T) {
	ft := &faultTransport{}
	c, _ := newTestClient(t, ft, WithBatchSize(2))
	addAll(t, c, []uint64{1, 2, 3, 4})
	flush(t, c) // barrier only; size flushes should have split the batches
	reqs := ft.sent()
	if len(reqs) < 2 {
		t.Fatalf("server saw %d requests, want ≥ 2 size-triggered batches", len(reqs))
	}
	for _, r := range reqs {
		if len(r) > 2 {
			t.Fatalf("a batch carried %d items past the batch size of 2", len(r))
		}
	}
	if st := c.Stats(); st.Acked != 4 {
		t.Fatalf("acked %d, want 4", st.Acked)
	}
}

func TestAgeFlush(t *testing.T) {
	ft := &faultTransport{}
	c, _ := newTestClient(t, ft, WithFlushInterval(5*time.Millisecond))
	if err := c.Add(77); err != nil {
		t.Fatal(err)
	}
	// One item in a huge batch: only the age timer can flush it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Acked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age-based flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if reqs := ft.sent(); len(reqs) != 1 || len(reqs[0]) != 1 || reqs[0][0] != 77 {
		t.Fatalf("age flush sent %v, want the single item 77", reqs)
	}
}

// TestWithTenantRoutes pins the multi-tenant path rewriting: ingest and
// Report both ride the /t/{tenant} family, with the name URL-escaped
// exactly once.
func TestWithTenantRoutes(t *testing.T) {
	ft := &faultTransport{steps: []step{
		{}, // ingest flush
		{body: `{"len":1,"eps":0.1,"phi":0.3,"heavy_hitters":[{"item":5,"estimate":1}]}`},
	}}
	c, _ := newTestClient(t, ft, WithTenant("team a/7"))
	addAll(t, c, []uint64{5})
	flush(t, c)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rep, err := c.Report(ctx)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if len(rep.HeavyHitters) != 1 || rep.HeavyHitters[0].Item != 5 {
		t.Fatalf("report = %+v", rep)
	}
	want := []string{"/t/team%20a%2F7/ingest", "/t/team%20a%2F7/report"}
	got := ft.seenPaths()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("paths = %v, want %v", got, want)
	}
}

// TestWithTenantEmptyKeepsSingleRoutes: an empty tenant is a no-op, not
// a "/t//" prefix.
func TestWithTenantEmptyKeepsSingleRoutes(t *testing.T) {
	ft := &faultTransport{}
	c, _ := newTestClient(t, ft, WithTenant(""))
	addAll(t, c, []uint64{1})
	flush(t, c)
	if got := ft.seenPaths(); len(got) != 1 || got[0] != "/ingest" {
		t.Fatalf("paths = %v, want [/ingest]", got)
	}
}

func TestAPIErrorClassification(t *testing.T) {
	cases := []struct {
		status    int
		retryable bool
	}{
		{429, true}, {500, true}, {503, true}, {400, false}, {404, false}, {413, false},
	}
	for _, tc := range cases {
		ae := &APIError{Status: tc.status}
		if ae.Retryable() != tc.retryable {
			t.Errorf("status %d retryable = %v, want %v", tc.status, ae.Retryable(), tc.retryable)
		}
	}
	if !IsRetryable(errors.New("dial tcp: connection refused")) {
		t.Error("transport errors must classify as retryable")
	}
	if IsRetryable(nil) {
		t.Error("nil error classified as retryable")
	}
}
