// Package hhclient is the importable ingest client for the hhd daemon
// (cmd/hhd). It batches items in a bounded in-memory queue, flushes by
// size and by age on a background goroutine, and retries retryable
// failures (429 load sheds, 5xx, transport errors) with exponential
// backoff and jitter, honoring Retry-After.
//
// Delivery is at-least-once up to acknowledgment (DESIGN.md §12): an
// item counted in Stats().Acked was applied by the daemon at least
// once; an item counted in Stats().Dropped was abandoned after the
// retry budget and may have been applied zero times. A 429 shed
// response names the prefix of the batch the daemon applied, and the
// client trims it before resending — so duplicates are bounded by
// Stats().RetriedItems, not by total traffic.
package hhclient

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults for the tunables; see the corresponding With options.
const (
	DefaultBatchSize     = 4096
	DefaultFlushInterval = 50 * time.Millisecond
	DefaultQueueSize     = 1 << 16
	DefaultMaxRetries    = 8
	DefaultBackoffBase   = 10 * time.Millisecond
	DefaultBackoffCap    = 2 * time.Second
)

// Stats is a point-in-time snapshot of the client's delivery counters.
// The identity Enqueued = Acked + Dropped + Queued holds at quiescence;
// Queued includes both the in-memory queue and the in-flight batch.
type Stats struct {
	// Enqueued counts items accepted by Add/AddBatch.
	Enqueued uint64
	// Acked counts items acknowledged by the daemon (applied at least
	// once).
	Acked uint64
	// Retried counts re-send attempts (one per backoff cycle, however
	// many items the resent batch carried).
	Retried uint64
	// RetriedItems counts items that were re-sent at least once — an
	// upper bound on duplicate applications at the daemon.
	RetriedItems uint64
	// Dropped counts items abandoned after the retry budget, a terminal
	// server error, or client shutdown.
	Dropped uint64
	// Queued is Enqueued − Acked − Dropped: items still owned by the
	// client (queued or in flight).
	Queued uint64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (and therefore
// the transport — handy for fault injection in tests).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithBatchSize sets how many items a flush carries at most.
func WithBatchSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.batchSize = n
		}
	}
}

// WithFlushInterval sets the age-based flush: a non-empty batch is sent
// at least this often even if it never fills.
func WithFlushInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.flushEvery = d
		}
	}
}

// WithQueueSize bounds the in-memory queue; Add returns ErrQueueFull
// beyond it.
func WithQueueSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.queueSize = n
		}
	}
}

// WithMaxRetries sets how many times one batch is re-sent before its
// remaining items are dropped.
func WithMaxRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.maxRetries = n
		}
	}
}

// WithBackoff sets the exponential backoff schedule: attempt n sleeps
// roughly base·2ⁿ (half fixed, half jitter), never more than cap. A
// server Retry-After overrides the computed delay.
func WithBackoff(base, cap time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoffBase = base
		}
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// WithSeed seeds the jitter source, making backoff sequences
// reproducible in tests.
func WithSeed(seed int64) Option { return func(c *Client) { c.seed = seed } }

// WithTenant points the client at one tenant of a multi-tenant daemon
// (-tenants on cmd/hhd): ingest posts to /t/{tenant}/ingest and Report
// reads /t/{tenant}/report. The name is URL-escaped here, so any
// tenant the daemon accepts (spaces, slashes, up to 512 bytes) is safe
// to pass verbatim. An empty name keeps the single-tenant routes.
func WithTenant(tenant string) Option {
	return func(c *Client) {
		if tenant != "" {
			c.pathPrefix = "/t/" + url.PathEscape(tenant)
		}
	}
}

// WithMetrics registers the client's counters (hhclient_*) on an obs
// registry, typically the one the embedding process already exposes.
func WithMetrics(reg *obs.Registry) Option { return func(c *Client) { c.reg = reg } }

// Client streams items to one hhd daemon. Create with New; it is safe
// for concurrent use. Add/AddBatch never block — a full queue is the
// caller's backpressure signal.
type Client struct {
	baseURL string
	// pathPrefix is "/t/{tenant}" under WithTenant, empty otherwise.
	pathPrefix string
	hc         *http.Client
	batchSize  int
	flushEvery time.Duration
	queueSize  int
	maxRetries int
	backoffBase,
	backoffCap time.Duration
	seed int64
	reg  *obs.Registry

	queue   chan uint64
	flushCh chan chan struct{}

	enqueued, acked, retried, retriedItems, dropped atomic.Uint64
	lastErr                                         atomic.Value // error

	// rng is owned by the worker goroutine (jitter only).
	rng *rand.Rand
	// sleep is the retry delay; tests replace it to pin backoff
	// schedules without real sleeps.
	sleep func(ctx context.Context, d time.Duration) error

	closed     atomic.Bool
	ctx        context.Context
	cancel     context.CancelFunc
	workerDone chan struct{}
}

// New returns a running client for the daemon at baseURL (scheme and
// host, e.g. "http://localhost:8080"). Close it to flush and release
// the background flusher.
func New(baseURL string, opts ...Option) (*Client, error) {
	baseURL = strings.TrimSuffix(baseURL, "/")
	if baseURL == "" {
		return nil, errors.New("hhclient: empty base URL")
	}
	c := &Client{
		baseURL:     baseURL,
		hc:          http.DefaultClient,
		batchSize:   DefaultBatchSize,
		flushEvery:  DefaultFlushInterval,
		queueSize:   DefaultQueueSize,
		maxRetries:  DefaultMaxRetries,
		backoffBase: DefaultBackoffBase,
		backoffCap:  DefaultBackoffCap,
		seed:        1,
		sleep:       sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	c.rng = rand.New(rand.NewSource(c.seed))
	c.queue = make(chan uint64, c.queueSize)
	c.flushCh = make(chan chan struct{})
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.workerDone = make(chan struct{})
	if c.reg != nil {
		c.register(c.reg)
	}
	go c.worker()
	return c, nil
}

// register wires the delivery counters into an obs registry.
func (c *Client) register(reg *obs.Registry) {
	reg.CounterFunc("hhclient_enqueued_total", "Items accepted into the client queue.",
		nil, func() float64 { return float64(c.enqueued.Load()) })
	reg.CounterFunc("hhclient_acked_total", "Items acknowledged by the daemon.",
		nil, func() float64 { return float64(c.acked.Load()) })
	reg.CounterFunc("hhclient_retried_total", "Batch re-send attempts.",
		nil, func() float64 { return float64(c.retried.Load()) })
	reg.CounterFunc("hhclient_dropped_total", "Items abandoned after the retry budget or shutdown.",
		nil, func() float64 { return float64(c.dropped.Load()) })
	reg.GaugeFunc("hhclient_queue_depth", "Items queued or in flight.",
		nil, func() float64 { return float64(c.Stats().Queued) })
}

// Add enqueues one item for asynchronous delivery. It never blocks:
// ErrQueueFull means the queue is at capacity and the item was NOT
// taken; ErrClosed means the client is shut down.
func (c *Client) Add(item uint64) error {
	if c.closed.Load() {
		return ErrClosed
	}
	select {
	case c.queue <- item:
		c.enqueued.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// AddBatch enqueues as many leading items as fit, returning how many
// were taken. A short count comes with ErrQueueFull; the caller owns
// the remainder items[n:].
func (c *Client) AddBatch(items []uint64) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	for i, it := range items {
		select {
		case c.queue <- it:
		default:
			c.enqueued.Add(uint64(i))
			return i, ErrQueueFull
		}
	}
	c.enqueued.Add(uint64(len(items)))
	return len(items), nil
}

// Flush sends everything enqueued before the call and waits until the
// daemon has acknowledged (or the retry budget dropped) each item.
func (c *Client) Flush(ctx context.Context) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.flush(ctx)
}

func (c *Client) flush(ctx context.Context) error {
	ack := make(chan struct{})
	select {
	case c.flushCh <- ack:
	case <-ctx.Done():
		return ctx.Err()
	case <-c.ctx.Done():
		return ErrClosed
	}
	select {
	case <-ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes pending items, stops the background flusher, and makes
// every later Add fail with ErrClosed. The context bounds how long the
// final flush may take; on expiry, unsent items are dropped.
func (c *Client) Close(ctx context.Context) error {
	if !c.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	err := c.flush(ctx)
	c.cancel()
	select {
	case <-c.workerDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Stats returns a snapshot of the delivery counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Enqueued:     c.enqueued.Load(),
		Acked:        c.acked.Load(),
		Retried:      c.retried.Load(),
		RetriedItems: c.retriedItems.Load(),
		Dropped:      c.dropped.Load(),
	}
	if resolved := s.Acked + s.Dropped; s.Enqueued > resolved {
		s.Queued = s.Enqueued - resolved
	}
	return s
}

// LastError returns the most recent error that caused items to be
// dropped, or nil. Acked-after-retry successes do not set it.
func (c *Client) LastError() error {
	if v := c.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// worker is the background flusher: it accumulates a batch from the
// queue and sends it when full (size flush), when flushEvery elapses
// (age flush), or when a Flush barrier arrives.
func (c *Client) worker() {
	defer close(c.workerDone)
	batch := make([]uint64, 0, c.batchSize)
	timer := time.NewTimer(c.flushEvery)
	defer timer.Stop()
	for {
		select {
		case <-c.ctx.Done():
			// Shutdown: whatever is still owned by the client is dropped,
			// keeping the Stats identity intact.
			n := uint64(len(batch))
			for {
				select {
				case <-c.queue:
					n++
					continue
				default:
				}
				break
			}
			if n > 0 {
				c.dropped.Add(n)
			}
			return
		case it := <-c.queue:
			batch = append(batch, it)
			if len(batch) >= c.batchSize {
				c.send(batch)
				batch = batch[:0]
			}
		case <-timer.C:
			if len(batch) > 0 {
				c.send(batch)
				batch = batch[:0]
			}
			timer.Reset(c.flushEvery)
		case ack := <-c.flushCh:
			// Drain everything already enqueued, then send the remainder.
		drain:
			for {
				select {
				case it := <-c.queue:
					batch = append(batch, it)
					if len(batch) >= c.batchSize {
						c.send(batch)
						batch = batch[:0]
					}
				default:
					break drain
				}
			}
			if len(batch) > 0 {
				c.send(batch)
				batch = batch[:0]
			}
			close(ack)
		}
	}
}

// send delivers one batch, retrying retryable failures until acked,
// out of budget, or shut down. A 429's acked prefix is trimmed before
// each resend.
func (c *Client) send(batch []uint64) {
	body := make([]byte, 8*len(batch))
	for i, it := range batch {
		binary.LittleEndian.PutUint64(body[8*i:], it)
	}
	remaining := uint64(len(batch))
	for attempt := 0; ; attempt++ {
		err := c.post(body)
		if err == nil {
			c.acked.Add(remaining)
			return
		}
		var ae *APIError
		retryAfter := time.Duration(0)
		if errors.As(err, &ae) {
			retryAfter = ae.RetryAfter
			if n := min(ae.Accepted, remaining); n > 0 {
				c.acked.Add(n)
				remaining -= n
				body = body[8*n:]
				if remaining == 0 {
					return
				}
			}
		}
		if !IsRetryable(err) || attempt >= c.maxRetries {
			c.dropped.Add(remaining)
			c.lastErr.Store(err)
			return
		}
		delay := c.backoff(attempt)
		if retryAfter > 0 {
			delay = retryAfter
		}
		if c.sleep(c.ctx, delay) != nil {
			c.dropped.Add(remaining)
			c.lastErr.Store(err)
			return
		}
		c.retried.Add(1)
		c.retriedItems.Add(remaining)
	}
}

// post performs one POST /ingest with a binary little-endian body.
// nil means every item in the body was acknowledged.
func (c *Client) post(body []byte) error {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, c.baseURL+c.pathPrefix+"/ingest", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	ae := &APIError{Status: resp.StatusCode}
	var payload struct {
		Error    string `json:"error"`
		Accepted uint64 `json:"accepted"`
	}
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil && json.Unmarshal(b, &payload) == nil {
		ae.Msg = payload.Error
		ae.Accepted = payload.Accepted
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// backoff computes the delay before retry number attempt: base·2ᵃᵗᵗ
// capped at backoffCap, half fixed and half jitter so synchronized
// clients desynchronize.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.backoffCap
	if attempt < 32 {
		if shifted := c.backoffBase << uint(attempt); shifted > 0 && shifted < d {
			d = shifted
		}
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// sleepCtx is the production sleep: a timer racing the context.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Report is the subset of the daemon's GET /report body a streaming
// client acts on.
type Report struct {
	// Len is the stream length the report answered for.
	Len uint64
	// Eps and Phi are the engine's effective problem parameters.
	Eps, Phi float64
	// HeavyHitters holds the reported items with their estimates.
	HeavyHitters []ReportedItem
}

// ReportedItem is one heavy hitter in a Report.
type ReportedItem struct {
	// Item is the reported element.
	Item uint64
	// Estimate is the engine's frequency estimate for Item.
	Estimate float64
}

// Report fetches the daemon's current heavy-hitter report. It is a
// plain request-response call, independent of the ingest queue.
func (c *Client) Report(ctx context.Context) (*Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+c.pathPrefix+"/report", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(b))}
	}
	var body struct {
		Len          uint64  `json:"len"`
		Eps          float64 `json:"eps"`
		Phi          float64 `json:"phi"`
		HeavyHitters []struct {
			Item     uint64  `json:"item"`
			Estimate float64 `json:"estimate"`
		} `json:"heavy_hitters"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body); err != nil {
		return nil, fmt.Errorf("hhclient: decoding report: %w", err)
	}
	rep := &Report{Len: body.Len, Eps: body.Eps, Phi: body.Phi,
		HeavyHitters: make([]ReportedItem, len(body.HeavyHitters))}
	for i, h := range body.HeavyHitters {
		rep.HeavyHitters[i] = ReportedItem{Item: h.Item, Estimate: h.Estimate}
	}
	return rep, nil
}
