package hhclient

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ErrQueueFull is returned by Add and AddBatch when the client's bounded
// in-memory queue has no room. The item was NOT enqueued; the caller
// decides whether to drop, block, or apply its own backpressure.
var ErrQueueFull = errors.New("hhclient: ingest queue full")

// ErrClosed is returned by Add, AddBatch, and Flush after Close.
var ErrClosed = errors.New("hhclient: client closed")

// APIError is a non-2xx response from the daemon. Status 429 and 5xx
// are retryable (the client retries them itself); other 4xx are
// terminal — the request was understood and refused, so resending the
// same bytes cannot succeed.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the daemon's error string, when the body carried one.
	Msg string
	// RetryAfter is the server-requested retry delay (zero when the
	// response carried no Retry-After header).
	RetryAfter time.Duration
	// Accepted is how many leading items of the rejected batch the
	// daemon applied before refusing the rest (the "accepted" field of
	// a 429 shed response). The client trims this prefix before
	// retrying, so only unacknowledged items are resent.
	Accepted uint64
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("hhclient: server returned %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("hhclient: server returned %d", e.Status)
}

// Retryable reports whether resending the request may succeed: true for
// 429 (load shed — the daemon asked for a retry) and 5xx, false for
// other 4xx.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// IsRetryable classifies any error the client's send path can surface.
// Transport errors (connection refused, reset, timeout) are retryable:
// the daemon may be restarting. An *APIError answers for itself.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	// Anything that never produced an HTTP status is a transport-level
	// failure; resending is the only way to find out if it cleared.
	return true
}
