package l1hh

// E10 — sliding-window overhead (DESIGN.md §5): what windowing costs
// relative to a whole-stream solver, on both the ingest path (bucket
// rotation every ⌈W/B⌉ items) and the report path (the B+1-way bucket
// fold). Space is the usual "model-bits" custom metric: a B-bucket
// window honestly costs B+1 sketches of window scale.

import (
	"fmt"
	"testing"
	"time"
)

// windowBenchConfig sizes the solvers for a 2¹⁷-item window over the
// shared zipf-flavoured planted stream.
func windowBenchConfig() Config {
	return Config{
		Eps: 0.02, Phi: 0.1, Delta: 0.05,
		Universe: 1 << 32, Seed: 2,
	}
}

// BenchmarkWindowedInsert compares the serial whole-stream insert path
// against windowed inserts at several granularities B.
func BenchmarkWindowedInsert(b *testing.B) {
	const w = 1 << 17
	b.Run("whole-stream", func(b *testing.B) {
		cfg := windowBenchConfig()
		cfg.StreamLength = uint64(max(b.N, len(benchStream)))
		hh, err := NewListHeavyHitters(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hh.Insert(benchStream[i&(1<<20-1)])
		}
		b.StopTimer()
		reportBits(b, hh)
	})
	for _, buckets := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("window/buckets=%d", buckets), func(b *testing.B) {
			hh, err := NewWindowedListHeavyHitters(WindowConfig{
				Config: windowBenchConfig(), Window: w, WindowBuckets: buckets,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hh.Insert(benchStream[i&(1<<20-1)])
			}
			b.StopTimer()
			reportBits(b, hh)
		})
	}
	b.Run("window/duration", func(b *testing.B) {
		cfg := windowBenchConfig()
		cfg.StreamLength = w // expected per-window mass
		hh, err := NewWindowedListHeavyHitters(WindowConfig{
			Config: cfg, WindowDuration: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hh.Insert(benchStream[i&(1<<20-1)])
		}
		b.StopTimer()
		reportBits(b, hh)
	})
}

// BenchmarkWindowedReport measures the report-path fold: clone one
// bucket through its checkpoint codec, merge the other B buckets in,
// report on the combined state.
func BenchmarkWindowedReport(b *testing.B) {
	const w = 1 << 17
	for _, buckets := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			hh, err := NewWindowedListHeavyHitters(WindowConfig{
				Config: windowBenchConfig(), Window: w, WindowBuckets: buckets,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < (1<<17)+(1<<14); i++ { // steady state: full ring
				hh.Insert(benchStream[i&(1<<20-1)])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := hh.Report(); len(rep) == 0 {
					b.Fatal("empty report")
				}
			}
		})
	}
}

// BenchmarkWindowedShardedInsert: the windowed engines behind the
// concurrent sharded ingest path, as cmd/hhd runs them.
func BenchmarkWindowedShardedInsert(b *testing.B) {
	const chunk = 8192
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			hh, err := NewShardedListHeavyHitters(ShardedConfig{
				Config: windowBenchConfig(),
				Shards: shards,
				Window: 1 << 17,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for off := 0; off < b.N; off += chunk {
				end := off + chunk
				if end > b.N {
					end = b.N
				}
				lo, hi := off&(1<<20-1), end&(1<<20-1)
				if hi <= lo {
					hi = 1 << 20
				}
				if err := hh.InsertBatch(benchStream[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
			hh.Flush()
			b.StopTimer()
			b.ReportMetric(float64(hh.ModelBits()), "model-bits")
			hh.Close()
		})
	}
}
