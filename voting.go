package l1hh

import (
	"repro/internal/rng"
	"repro/internal/unknown"
	"repro/internal/voting"
)

// Ranking is one vote: a permutation of the candidate ids [0, n), most
// preferred first.
type Ranking = voting.Ranking

// ScoredCandidate pairs a candidate with an estimated score.
type ScoredCandidate = voting.ScoredCandidate

// VoteConfig configures the rank-aggregation sketches.
type VoteConfig struct {
	// Candidates is the number of candidates n; votes are permutations of
	// [0, n).
	Candidates int
	// Eps is the additive error: ε·m·n for Borda scores, ε·m for maximin
	// scores (Definitions 6–9).
	Eps float64
	// Delta is the failure probability; 0 defaults to 0.05.
	Delta float64
	// StreamLength is the number of votes; zero means unknown
	// (Theorem 8 machinery).
	StreamLength uint64
	// Seed makes every random choice reproducible.
	Seed uint64
}

func (c *VoteConfig) fill() {
	if c.Delta == 0 {
		c.Delta = 0.05
	}
}

// Borda estimates every candidate's Borda score from a stream of votes
// (Theorem 5).
type Borda struct {
	insert func(Ranking)
	scores func() []float64
	max    func() (int, float64)
	list   func(float64) []ScoredCandidate
	bits   func() int64
}

// NewBorda returns an ε-Borda / (ε,ϕ)-List Borda solver.
func NewBorda(cfg VoteConfig) (*Borda, error) {
	cfg.fill()
	src := rng.New(cfg.Seed)
	if cfg.StreamLength == 0 {
		u, err := unknown.NewBorda(src, cfg.Candidates, cfg.Eps, cfg.Delta)
		if err != nil {
			return nil, err
		}
		return &Borda{
			insert: u.Insert, scores: u.Scores, max: u.Max,
			list: func(phi float64) []ScoredCandidate { return nil },
			bits: u.ModelBits,
		}, nil
	}
	b, err := voting.NewBordaSketch(src, voting.BordaConfig{
		N: cfg.Candidates, Eps: cfg.Eps, Delta: cfg.Delta, M: cfg.StreamLength,
	})
	if err != nil {
		return nil, err
	}
	return &Borda{
		insert: b.Insert, scores: b.Scores, max: b.Max, list: b.List,
		bits: b.ModelBits,
	}, nil
}

// Insert processes one vote.
func (b *Borda) Insert(r Ranking) { b.insert(r) }

// Scores returns every candidate's Borda score estimate (±ε·m·n whp).
func (b *Borda) Scores() []float64 { return b.scores() }

// Max returns an ε-Borda winner and its score estimate.
func (b *Borda) Max() (candidate int, score float64) { return b.max() }

// List solves (ε,ϕ)-List Borda: all candidates with score ≥ ϕ·m·n, none
// with score ≤ (ϕ−ε)·m·n. Only available with a known stream length.
func (b *Borda) List(phi float64) []ScoredCandidate { return b.list(phi) }

// ModelBits reports the sketch size under the paper's accounting.
func (b *Borda) ModelBits() int64 { return b.bits() }

// Maximin estimates every candidate's maximin score from a stream of
// votes (Theorem 6).
type Maximin struct {
	insert func(Ranking)
	scores func() []float64
	max    func() (int, float64)
	list   func(float64) []ScoredCandidate
	bits   func() int64
}

// NewMaximin returns an ε-maximin / (ε,ϕ)-List maximin solver.
func NewMaximin(cfg VoteConfig) (*Maximin, error) {
	cfg.fill()
	src := rng.New(cfg.Seed)
	if cfg.StreamLength == 0 {
		u, err := unknown.NewMaximin(src, cfg.Candidates, cfg.Eps, cfg.Delta)
		if err != nil {
			return nil, err
		}
		return &Maximin{
			insert: u.Insert, scores: u.Scores, max: u.Max,
			list: func(phi float64) []ScoredCandidate { return nil },
			bits: u.ModelBits,
		}, nil
	}
	m, err := voting.NewMaximinSketch(src, voting.MaximinConfig{
		N: cfg.Candidates, Eps: cfg.Eps, Delta: cfg.Delta, M: cfg.StreamLength,
	})
	if err != nil {
		return nil, err
	}
	return &Maximin{
		insert: m.Insert, scores: m.Scores, max: m.Max, list: m.List,
		bits: m.ModelBits,
	}, nil
}

// Insert processes one vote.
func (m *Maximin) Insert(r Ranking) { m.insert(r) }

// Scores returns every candidate's maximin score estimate (±ε·m whp).
func (m *Maximin) Scores() []float64 { return m.scores() }

// Max returns an ε-maximin winner and its score estimate.
func (m *Maximin) Max() (candidate int, score float64) { return m.max() }

// List solves (ε,ϕ)-List maximin: all candidates with score ≥ ϕ·m, none
// with score ≤ (ϕ−ε)·m. Only available with a known stream length.
func (m *Maximin) List(phi float64) []ScoredCandidate { return m.list(phi) }

// ModelBits reports the sketch size under the paper's accounting.
func (m *Maximin) ModelBits() int64 { return m.bits() }

// VoteTally is the exact Borda/plurality/pairwise oracle, exported for
// verification and examples.
type VoteTally = voting.Tally

// NewVoteTally returns an exact tally over n candidates.
func NewVoteTally(n int) *VoteTally { return voting.NewTally(n) }

// IdentityRanking returns the ranking 0 ≻ 1 ≻ … ≻ n−1.
func IdentityRanking(n int) Ranking { return voting.Identity(n) }

// VoteGenerator produces one vote per call.
type VoteGenerator = voting.Generator

// NewImpartialCulture returns a uniform vote generator over n candidates.
func NewImpartialCulture(seed uint64, n int) VoteGenerator {
	return voting.NewImpartialCulture(rng.New(seed), n)
}

// NewMallows returns a Mallows(q) vote generator around center; small q
// concentrates votes near the center ranking.
func NewMallows(seed uint64, center Ranking, q float64) VoteGenerator {
	return voting.NewMallows(rng.New(seed), center, q)
}

// NewPlackettLuce returns a Plackett-Luce vote generator with the given
// positive candidate weights.
func NewPlackettLuce(seed uint64, weights []float64) VoteGenerator {
	return voting.NewPlackettLuce(rng.New(seed), weights)
}
