package l1hh

// sentinel.go — the opt-in accuracy sentinel (WithAccuracySentinel): a
// sampled exact shadow of the stream that audits every Report against
// the solver's (ε,ϕ) contract at run time. Each occurrence is kept with
// probability p (geometric gap-skipping, so the per-item cost is a
// counter decrement, not a random draw); the sampled counts, scaled by
// the self-normalized factor seen/sampled, estimate true frequencies to
// within sampling noise. A report item whose estimate strays from its
// shadow truth by more than ε·m plus a 3σ noise allowance — or a
// ϕ-heavy shadow item missing from the report — counts as a guarantee
// violation. DESIGN.md §10 derives the noise allowance and its limits.

import (
	"math"
	"sync"

	"repro/internal/rng"
)

// maxSentinelKeys caps the exact-shadow map so a high-cardinality
// stream cannot turn the sentinel into an unbounded exact counter.
// Occurrences of ids that arrive once the map is full and were never
// sampled before are dropped (and counted in SentinelStats.Dropped);
// heavy items are sampled early with overwhelming probability, so the
// audit loses only tail keys it would never flag anyway.
const maxSentinelKeys = 1 << 17

// SentinelStats is the accuracy sentinel's snapshot, reported inside
// Stats when WithAccuracySentinel is active.
type SentinelStats struct {
	// SampleRate is the configured per-occurrence sampling probability.
	SampleRate float64
	// TotalSeen is the number of occurrences the sentinel observed
	// (every item accepted by the solver since construction).
	TotalSeen uint64
	// Sampled is the number of occurrences kept in the shadow.
	Sampled uint64
	// Keys is the number of distinct ids currently in the shadow.
	Keys int
	// Dropped is the number of sampled occurrences discarded because
	// the shadow was full (maxSentinelKeys) and the id was new.
	Dropped uint64
	// Checks is the number of reports audited so far.
	Checks uint64
	// Violations is the cumulative count of guarantee violations: a
	// reported estimate outside ε·m plus the sampling-noise allowance,
	// or a ϕ-heavy shadow item absent from a report.
	Violations uint64
	// ObservedEps is the worst per-item error fraction |est−truth|/m
	// over the most recently audited report; it includes sampling
	// noise, so on small streams it can exceed the true error.
	ObservedEps float64
	// MaxObservedEps is the worst ObservedEps over every audit so far.
	MaxObservedEps float64
	// Incoherent reports that the solver has merged foreign state the
	// sentinel never observed; audits are suspended from that point.
	Incoherent bool
}

// sentinel is the shadow sampler. One mutex guards everything: the hot
// path amortizes it over batches and, between samples, does a single
// counter decrement per occurrence, so the lock is held for a handful
// of nanoseconds per batch.
type sentinel struct {
	rate float64

	mu      sync.Mutex
	src     *rng.Source
	counts  map[uint64]uint64
	skip    uint64 // occurrences to pass over before the next sample
	seen    uint64
	sampled uint64
	dropped uint64

	checks      uint64
	violations  uint64
	observedEps float64
	maxObserved float64
	foreign     bool
}

// newSentinel builds a sentinel sampling each occurrence with
// probability rate ∈ (0,1], seeded from src (callers derive it from the
// solver seed, so runs are reproducible).
func newSentinel(rate float64, src *rng.Source) *sentinel {
	s := &sentinel{
		rate:   rate,
		src:    src,
		counts: make(map[uint64]uint64),
	}
	s.skip = s.nextGap()
	return s
}

// nextGap draws the number of occurrences to pass over before the next
// sample: geometric with success probability rate, via inversion.
func (s *sentinel) nextGap() uint64 {
	if s.rate >= 1 {
		return 0
	}
	u := s.src.Float64()
	// 1-u ∈ (0,1], so the log is finite and ≤ 0.
	g := math.Floor(math.Log(1-u) / math.Log(1-s.rate))
	if g < 0 || g > 1e18 {
		return 1e18 // rate so small the gap overflows: effectively off
	}
	return uint64(g)
}

// observe records one occurrence. Nil-safe.
func (s *sentinel) observe(x Item) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.seen++
	if s.skip > 0 {
		s.skip--
	} else {
		s.take(x)
		s.skip = s.nextGap()
	}
	s.mu.Unlock()
}

// observeBatch records a batch under one lock acquisition, skipping
// between samples by index arithmetic instead of per-item work.
// Nil-safe.
func (s *sentinel) observeBatch(items []Item) {
	if s == nil || len(items) == 0 {
		return
	}
	s.mu.Lock()
	s.seen += uint64(len(items))
	i := s.skip
	for i < uint64(len(items)) {
		s.take(items[i])
		i += s.nextGap() + 1
	}
	s.skip = i - uint64(len(items))
	s.mu.Unlock()
}

// take adds one sampled occurrence to the shadow, respecting the key
// cap. Callers hold mu.
func (s *sentinel) take(x Item) {
	s.sampled++
	if _, ok := s.counts[x]; !ok && len(s.counts) >= maxSentinelKeys {
		s.dropped++
		return
	}
	s.counts[x]++
}

// markForeign suspends auditing: the solver absorbed state (a Merge)
// the sentinel never sampled, so shadow truth no longer describes the
// solver's stream. Nil-safe.
func (s *sentinel) markForeign() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.foreign = true
	s.mu.Unlock()
}

// check audits one report against the shadow. m is the stream length
// the report answers for — the sentinel's own occurrence count, which
// is coherent with what it sampled. Nil-safe; no-op once foreign or
// before anything was sampled.
func (s *sentinel) check(report []ItemEstimate, eps, phi float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.foreign || s.sampled == 0 || s.seen == 0 {
		return
	}
	s.checks++
	m := float64(s.seen)
	scale := m / float64(s.sampled)
	worst := 0.0
	inReport := make(map[Item]bool, len(report))
	for _, r := range report {
		inReport[r.Item] = true
		truth := float64(s.counts[r.Item]) * scale
		diff := math.Abs(r.F - truth)
		if frac := diff / m; frac > worst {
			worst = frac
		}
		if diff > eps*m+noise(truth, scale) {
			s.violations++
		}
	}
	// Miss check: a shadow item whose truth estimate clears ϕ·m even
	// after discounting sampling noise must have been reported.
	for x, c := range s.counts {
		truth := float64(c) * scale
		if truth-noise(truth, scale) > phi*m && !inReport[x] {
			s.violations++
		}
	}
	s.observedEps = worst
	if worst > s.maxObserved {
		s.maxObserved = worst
	}
}

// noise is the 3σ allowance on a scaled shadow count: a sampled count c
// has variance ≈ c·(1−p)/p², so truth = c·scale carries standard
// deviation ≈ sqrt(truth·scale). The max(·,1) keeps the allowance
// meaningful for never-sampled items (truth 0).
func noise(truth, scale float64) float64 {
	return 3 * math.Sqrt(math.Max(truth, 1)*scale)
}

// snapshot returns the sentinel's current statistics. Nil-safe: the
// zero value on a nil receiver.
func (s *sentinel) snapshot() SentinelStats {
	if s == nil {
		return SentinelStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SentinelStats{
		SampleRate:     s.rate,
		TotalSeen:      s.seen,
		Sampled:        s.sampled,
		Keys:           len(s.counts),
		Dropped:        s.dropped,
		Checks:         s.checks,
		Violations:     s.violations,
		ObservedEps:    s.observedEps,
		MaxObservedEps: s.maxObserved,
		Incoherent:     s.foreign,
	}
}
