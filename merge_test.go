package l1hh

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/wire"
)

// mergeTestPair builds two same-config sharded nodes, each fed one half
// of a fixed planted stream.
func mergeTestPair(t *testing.T, seed uint64, m int) (a, b *ShardedListHeavyHitters, stream []Item) {
	t.Helper()
	stream = GeneratePlantedStream(seed+500, m, shardedTestWeights, 100, 1<<30, OrderShuffled)
	mk := func() *ShardedListHeavyHitters {
		h, err := NewShardedListHeavyHitters(ShardedConfig{
			Config: Config{
				Eps: 0.02, Phi: 0.05, Delta: 0.05,
				StreamLength: uint64(m), Universe: 1 << 32, Seed: seed,
			},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		return h
	}
	a, b = mk(), mk()
	if err := a.InsertBatch(stream[:m/2]); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertBatch(stream[m/2:]); err != nil {
		t.Fatal(err)
	}
	return a, b, stream
}

// TestShardedMergeCommutative: merging A into B and B into A with
// identical seeds yields identical reports.
func TestShardedMergeCommutative(t *testing.T) {
	const m = 100_000
	a1, b1, stream := mergeTestPair(t, 61, m)
	if err := a1.MergeFrom(b1); err != nil {
		t.Fatal(err)
	}
	a2, b2, _ := mergeTestPair(t, 61, m)
	if err := b2.MergeFrom(a2); err != nil {
		t.Fatal(err)
	}
	ra, rb := a1.Report(), b2.Report()
	if len(ra) == 0 {
		t.Fatal("empty merged report on a stream with planted heavy hitters")
	}
	if fmt.Sprint(ra) != fmt.Sprint(rb) {
		t.Fatalf("A←B and B←A reports differ:\n%v\n%v", ra, rb)
	}
	checkGuarantees(t, ra, stream, 0.02, 0.05)
}

// TestMergedShardedRoundTrip: a merged engine round-trips through
// Marshal/Unmarshal unchanged — same report, stable bytes, and the
// restored engine keeps ingesting identically to the original.
func TestMergedShardedRoundTrip(t *testing.T) {
	const m = 100_000
	a, b, stream := mergeTestPair(t, 67, m)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalShardedListHeavyHitters(blob, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restored.Close() })
	if fmt.Sprint(restored.Report()) != fmt.Sprint(a.Report()) {
		t.Fatal("report changed across Marshal/Unmarshal of a merged engine")
	}
	blob2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshalled bytes differ for a merged engine")
	}
	// Both continue the stream identically.
	tail := stream[:10_000]
	if err := a.InsertBatch(tail); err != nil {
		t.Fatal(err)
	}
	if err := restored.InsertBatch(tail); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Report()) != fmt.Sprint(restored.Report()) {
		t.Fatal("reports diverge after identical post-merge tails")
	}
}

// TestMergeCheckpointEqualsSerial: merging two half-stream nodes yields
// the stream length and guarantees of the full serial run.
func TestMergeCheckpointEqualsSerial(t *testing.T) {
	const m = 100_000
	a, b, stream := mergeTestPair(t, 71, m)
	blob, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeCheckpoint(blob); err != nil {
		t.Fatal(err)
	}
	if got := a.Len(); got != m {
		t.Fatalf("merged Len = %d, want %d", got, m)
	}
	if got := a.Items(); got != m {
		t.Fatalf("merged Items = %d, want %d", got, m)
	}
	checkGuarantees(t, a.Report(), stream, 0.02, 0.05)
	// The donor is untouched and keeps working.
	if got := b.Len(); got != m/2 {
		t.Fatalf("donor Len = %d, want %d", got, m/2)
	}
}

// TestMergeCheckpointRejects: wrong tags, corrupt frames, parameter and
// partition mismatches, self-merge — all error, none panic, and
// parameter mismatches wrap ErrIncompatibleMerge.
func TestMergeCheckpointRejects(t *testing.T) {
	const m = 20_000
	a, b, _ := mergeTestPair(t, 73, m)
	blob, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if err := a.MergeCheckpoint(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if err := a.MergeCheckpoint([]byte{tagOptimal, 1, 2}); err == nil {
		t.Fatal("wrong tag accepted")
	}
	if err := a.MergeCheckpoint(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncation accepted")
	}
	if err := a.MergeCheckpoint(append(append([]byte{}, blob...), 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if err := a.MergeFrom(a); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("self-merge: %v", err)
	}

	mkVariant := func(mutate func(*ShardedConfig)) *ShardedListHeavyHitters {
		cfg := ShardedConfig{
			Config: Config{
				Eps: 0.02, Phi: 0.05, Delta: 0.05,
				StreamLength: m, Universe: 1 << 32, Seed: 73,
			},
			Shards: 4,
		}
		mutate(&cfg)
		h, err := NewShardedListHeavyHitters(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { h.Close() })
		return h
	}
	for name, variant := range map[string]*ShardedListHeavyHitters{
		"different eps":    mkVariant(func(c *ShardedConfig) { c.Eps = 0.03 }),
		"different phi":    mkVariant(func(c *ShardedConfig) { c.Phi = 0.06 }),
		"different seed":   mkVariant(func(c *ShardedConfig) { c.Seed = 999 }),
		"different shards": mkVariant(func(c *ShardedConfig) { c.Shards = 2 }),
	} {
		vblob, err := variant.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MergeCheckpoint(vblob); !errors.Is(err, ErrIncompatibleMerge) {
			t.Errorf("%s: err = %v, want ErrIncompatibleMerge", name, err)
		}
	}

	// Everything above left a usable: a valid merge still works.
	if err := a.MergeCheckpoint(blob); err != nil {
		t.Fatalf("valid merge after rejections: %v", err)
	}
	if got := a.Len(); got != m {
		t.Fatalf("Len = %d, want %d", got, m)
	}
}

// TestMergeCheckpointMixedShardsAtomic: a crafted container whose frame
// matches the live engine but whose shards are mutually inconsistent
// (shard 0 compatible, shard 1 from a different problem) must be
// rejected without mutating ANY shard — the check phase runs across the
// whole container before the first fold.
func TestMergeCheckpointMixedShardsAtomic(t *testing.T) {
	const m = 20_000
	a, b, _ := mergeTestPair(t, 89, m)
	blob, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble the container: tag | eps | phi | blob(snap), with
	// snap = version | shards | seed | items (v2) | blob(engine)...
	r := wire.NewReader(blob[1:])
	eps, phi := r.F64(), r.F64()
	snap := wire.NewReader(r.Blob())
	version, shards, seed := snap.U64(), snap.U64(), snap.U64()
	items := snap.U64() // v2 accepted-items counter
	engines := make([][]byte, shards)
	for i := range engines {
		engines[i] = snap.Blob()
	}
	if snap.Err() != nil || !snap.Done() {
		t.Fatal("could not disassemble a checkpoint this package produced")
	}
	// A solver from a different problem (different ε) in shard 1's slot.
	alien, err := NewListHeavyHitters(Config{
		Eps: 0.03, Phi: 0.05, Delta: 0.05,
		StreamLength: m, Universe: 1 << 32, Seed: 89,
	})
	if err != nil {
		t.Fatal(err)
	}
	alienBlob, err := alien.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	engines[1] = alienBlob
	sw := wire.NewWriter()
	sw.U64(version)
	sw.U64(shards)
	sw.U64(seed)
	sw.U64(items)
	for _, e := range engines {
		sw.Blob(e)
	}
	fw := wire.NewWriter()
	fw.F64(eps)
	fw.F64(phi)
	fw.Blob(sw.Bytes())
	crafted := append([]byte{tagSharded}, fw.Bytes()...)

	before := fmt.Sprint(a.Report())
	beforeLen := a.Len()
	if err := a.MergeCheckpoint(crafted); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("mixed-shard container: err = %v, want ErrIncompatibleMerge", err)
	}
	if got := a.Len(); got != beforeLen {
		t.Fatalf("rejected merge changed Len %d → %d (partial fold)", beforeLen, got)
	}
	if after := fmt.Sprint(a.Report()); after != before {
		t.Fatalf("rejected merge changed the report:\n%s\n%s", before, after)
	}
}

// TestListMergeFromErrors: unknown-length and mixed-algorithm solvers
// refuse to merge.
func TestListMergeFromErrors(t *testing.T) {
	known := func(algo Algorithm) *ListHeavyHitters {
		h, err := NewListHeavyHitters(Config{
			Eps: 0.05, Phi: 0.1, Delta: 0.05,
			StreamLength: 10_000, Universe: 1 << 20, Algorithm: algo, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	unknown, err := NewListHeavyHitters(Config{
		Eps: 0.05, Phi: 0.1, Delta: 0.05, Universe: 1 << 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := known(AlgorithmOptimal).MergeFrom(unknown); err == nil {
		t.Fatal("merge from unknown-length solver accepted")
	}
	if err := unknown.MergeFrom(known(AlgorithmOptimal)); err == nil {
		t.Fatal("merge into unknown-length solver accepted")
	}
	if err := known(AlgorithmOptimal).MergeFrom(known(AlgorithmSimple)); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatal("mixed-algorithm merge accepted")
	}
}

// TestMergeFromPaced: solvers with a de-amortization budget flush before
// merging, so the merged report equals the unpaced one.
func TestMergeFromPaced(t *testing.T) {
	const m = 100_000
	stream := GeneratePlantedStream(81, m, shardedTestWeights, 100, 1<<30, OrderShuffled)
	build := func(budget int) *ListHeavyHitters {
		h, err := NewListHeavyHitters(Config{
			Eps: 0.02, Phi: 0.05, Delta: 0.05,
			StreamLength: m, Universe: 1 << 32, Seed: 83,
			PacedBudget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	run := func(budget int) []ItemEstimate {
		a, b := build(budget), build(budget)
		for _, x := range stream[:m/2] {
			a.Insert(x)
		}
		for _, x := range stream[m/2:] {
			b.Insert(x)
		}
		if err := a.MergeFrom(b); err != nil {
			t.Fatal(err)
		}
		return a.Report()
	}
	if fmt.Sprint(run(1)) != fmt.Sprint(run(0)) {
		t.Fatal("paced and unpaced merges report differently")
	}
}
