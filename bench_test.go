package l1hh

// One benchmark family per Table 1 row of the paper plus the ablations
// DESIGN.md §5 lists. Space is emitted as the custom metric "model-bits"
// (the paper's accounting); time is the usual ns/op. EXPERIMENTS.md
// records the paper-vs-measured comparison; cmd/hhbench and cmd/votebench
// print the same series as sweep tables.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/commlower"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/voting"
)

// benchStream is a shared pre-generated workload (planted heavy hitters +
// noise) so benchmarks measure sketch work, not generation.
var benchStream = GeneratePlantedStream(1, 1<<20,
	[]float64{0.15, 0.11, 0.03}, 1000, 1<<30, OrderShuffled)

func reportBits(b *testing.B, s Sketch) {
	b.ReportMetric(float64(s.ModelBits()), "model-bits")
}

// --- E1: Table 1 row 1 — (ε,ϕ)-heavy hitters ---

func benchListInsert(b *testing.B, algo Algorithm, eps float64) {
	hh, err := NewListHeavyHitters(Config{
		Eps: eps, Phi: 0.1, Delta: 0.1,
		StreamLength: uint64(max(b.N, len(benchStream))),
		Universe:     1 << 32, Algorithm: algo, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Insert(benchStream[i&(1<<20-1)])
	}
	b.StopTimer()
	reportBits(b, hh)
}

func BenchmarkE1aAlgo2Insert(b *testing.B) {
	for _, eps := range []float64{0.05, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			benchListInsert(b, AlgorithmOptimal, eps)
		})
	}
}

func BenchmarkE1aAlgo1Insert(b *testing.B) {
	for _, eps := range []float64{0.05, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			benchListInsert(b, AlgorithmSimple, eps)
		})
	}
}

func BenchmarkE1aMisraGriesInsert(b *testing.B) {
	for _, eps := range []float64{0.05, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			mg := NewMisraGries(int(1/eps), 1<<32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mg.Insert(benchStream[i&(1<<20-1)])
			}
			b.StopTimer()
			reportBits(b, mg)
		})
	}
}

// BenchmarkE1cUpdateScaling verifies the O(1) worst-case update claim:
// with the stream length (hence sampling rate ℓ/m) varying over two
// orders of magnitude, per-item cost must *fall* toward the constant
// skip-sampler decrement, not grow.
func BenchmarkE1cUpdateScaling(b *testing.B) {
	for _, m := range []uint64{1 << 20, 1 << 24, 1 << 28} {
		b.Run(fmt.Sprintf("declared-m=%d", m), func(b *testing.B) {
			hh, err := NewListHeavyHitters(Config{
				Eps: 0.01, Phi: 0.1, Delta: 0.1,
				StreamLength: m, Universe: 1 << 32,
				Algorithm: AlgorithmOptimal, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hh.Insert(benchStream[i&(1<<20-1)])
			}
		})
	}
}

// BenchmarkE1cPacedInsert measures the strict-worst-case variant: the
// §3.1 de-amortization queue with a one-unit budget per insert.
func BenchmarkE1cPacedInsert(b *testing.B) {
	hh, err := NewListHeavyHitters(Config{
		Eps: 0.01, Phi: 0.1, Delta: 0.1,
		StreamLength: 1 << 24, Universe: 1 << 32,
		Algorithm: AlgorithmOptimal, PacedBudget: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Insert(benchStream[i&(1<<20-1)])
	}
}

// BenchmarkE1Report measures reporting time, which Theorem 2 requires to
// be linear in the output size.
func BenchmarkE1Report(b *testing.B) {
	hh, err := NewListHeavyHitters(Config{
		Eps: 0.02, Phi: 0.1, Delta: 0.1,
		StreamLength: uint64(len(benchStream)), Universe: 1 << 32,
		Algorithm: AlgorithmOptimal, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, x := range benchStream {
		hh.Insert(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hh.Report()
	}
}

// --- E8: sharded concurrent ingest vs the serial path ---

// benchZipfStream is the workload for the sharded benchmarks: a heavy-
// tailed Zipf stream, the insertion-stream setting the sharded engine
// targets. The Zipf support is 2²⁰ ids (the generator materializes a CDF
// of that length) inside the solvers' 2³⁰ universe. Lazy so plain test
// runs don't pay the generation cost.
var benchZipfStream = sync.OnceValue(func() []Item {
	return Generate(NewZipfStream(20, 1<<20, 1.1), 1<<20)
})

// shardedBenchConfig picks parameters where per-item sketch work
// dominates (ε = 0.01 with declared m = 2²² keeps the sample rate at 1),
// so the benchmark measures how well that work parallelizes across
// shards rather than raw channel overhead.
func shardedBenchConfig(shards int) ShardedConfig {
	return ShardedConfig{
		Config: Config{
			Eps: 0.01, Phi: 0.1, Delta: 0.1,
			StreamLength: 1 << 22, Universe: 1 << 30,
			Algorithm: AlgorithmOptimal, Seed: 16,
		},
		Shards: shards,
	}
}

// BenchmarkShardedInsert feeds a single producer through InsertBatch at
// 1–8 shards against the serial Insert loop. ns/op is per item; on a
// K-core machine the sharded rows should approach a K× speedup (the
// acceptance target is ≥ 2× at 8 shards), since the partition loop is
// cheap next to the per-item table work this config induces.
func BenchmarkShardedInsert(b *testing.B) {
	const chunk = 8192
	zipf := benchZipfStream()
	b.Run("serial", func(b *testing.B) {
		hh, err := NewListHeavyHitters(shardedBenchConfig(1).Config)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hh.Insert(zipf[i&(1<<20-1)])
		}
		b.StopTimer()
		reportBits(b, hh)
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			hh, err := NewShardedListHeavyHitters(shardedBenchConfig(shards))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for off := 0; off < b.N; off += chunk {
				end := off + chunk
				if end > b.N {
					end = b.N
				}
				lo, hi := off&(1<<20-1), end&(1<<20-1)
				if hi <= lo {
					hi = 1 << 20
				}
				if err := hh.InsertBatch(zipf[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
			hh.Flush() // count queued work inside the timed region
			b.StopTimer()
			b.ReportMetric(float64(hh.ModelBits()), "model-bits")
			hh.Close()
		})
	}
}

// BenchmarkShardedInsertParallel is the many-producer story: GOMAXPROCS
// goroutines call InsertBatch concurrently, which is how a daemon under
// concurrent HTTP load drives the engine.
func BenchmarkShardedInsertParallel(b *testing.B) {
	const chunk = 8192
	zipf := benchZipfStream()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			hh, err := NewShardedListHeavyHitters(shardedBenchConfig(shards))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			// One op = one item, as in BenchmarkShardedInsert; each
			// producer accumulates a local chunk before dispatching.
			b.RunParallel(func(pb *testing.PB) {
				batch := make([]Item, 0, chunk)
				pos := 0
				for pb.Next() {
					batch = append(batch, zipf[pos&(1<<20-1)])
					pos++
					if len(batch) == chunk {
						if err := hh.InsertBatch(batch); err != nil {
							b.Error(err)
							return
						}
						batch = batch[:0]
					}
				}
				if err := hh.InsertBatch(batch); err != nil {
					b.Error(err)
				}
			})
			hh.Flush()
			b.StopTimer()
			hh.Close()
		})
	}
}

// BenchmarkMergeCheckpoint measures the cluster-aggregation hot path:
// folding a peer node's checkpoint blob into a live engine (decode +
// per-shard state fold), the per-peer cost of every aggregator pull
// cycle in cmd/hhd cluster mode.
func BenchmarkMergeCheckpoint(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := shardedBenchConfig(shards)
			peer, err := NewShardedListHeavyHitters(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer peer.Close()
			if err := peer.InsertBatch(benchZipfStream()); err != nil {
				b.Fatal(err)
			}
			blob, err := peer.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			live, err := NewShardedListHeavyHitters(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer live.Close()
			if err := live.InsertBatch(benchZipfStream()); err != nil {
				b.Fatal(err)
			}
			live.Flush()
			b.SetBytes(int64(len(blob)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := live.MergeCheckpoint(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedInsertObserved is BenchmarkShardedInsert's
// observability twin: the same single-producer InsertBatch loop with the
// ingest-stage timing histograms installed via shard hooks. Comparing
// its ns/op against BenchmarkShardedInsert's matching shard rows pins
// the overhead of observability enabled (acceptance: ≤ 2%); with hooks
// absent the cost is a nil check, so the disabled case needs no twin.
func BenchmarkShardedInsertObserved(b *testing.B) {
	const chunk = 8192
	zipf := benchZipfStream()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reg := obs.NewRegistry()
			wait := reg.Histogram("enqueue_wait", "", nil, obs.DurationBuckets)
			apply := reg.Histogram("batch_apply", "", nil, obs.DurationBuckets)
			hh, err := buildSharded(shardedBenchConfig(shards), nil, shard.Hooks{
				EnqueueWait: wait.ObserveDuration,
				BatchApply:  apply.ObserveDuration,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for off := 0; off < b.N; off += chunk {
				end := off + chunk
				if end > b.N {
					end = b.N
				}
				lo, hi := off&(1<<20-1), end&(1<<20-1)
				if hi <= lo {
					hi = 1 << 20
				}
				if err := hh.InsertBatch(zipf[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
			hh.Flush()
			b.StopTimer()
			if wait.Count() == 0 || apply.Count() == 0 {
				b.Fatal("hooks did not fire")
			}
			hh.Close()
		})
	}
}

// BenchmarkShardedReport measures the merged-report barrier on a loaded
// engine.
func BenchmarkShardedReport(b *testing.B) {
	hh, err := NewShardedListHeavyHitters(shardedBenchConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	defer hh.Close()
	if err := hh.InsertBatch(benchZipfStream()); err != nil {
		b.Fatal(err)
	}
	hh.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hh.Report()
	}
}

// --- E2: Table 1 row 2 — ε-Maximum ---

func BenchmarkE2MaximumInsert(b *testing.B) {
	for _, eps := range []float64{0.05, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			mx, err := NewMaximum(Config{
				Eps: eps, Delta: 0.1,
				StreamLength: uint64(max(b.N, len(benchStream))),
				Universe:     1 << 32, Seed: 5,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mx.Insert(benchStream[i&(1<<20-1)])
			}
			b.StopTimer()
			reportBits(b, mx)
		})
	}
}

// --- E3: Table 1 row 3 — ε-Minimum ---

func BenchmarkE3MinimumInsert(b *testing.B) {
	for _, eps := range []float64{0.02, 0.005} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			mn, err := NewMinimum(Config{
				Eps: eps, Delta: 0.1,
				StreamLength: uint64(max(b.N, len(benchStream))),
				Universe:     64, Seed: 6,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mn.Insert(benchStream[i&(1<<20-1)] & 63)
			}
			b.StopTimer()
			reportBits(b, mn)
		})
	}
}

// --- E4/E5: Table 1 rows 4–5 — ε-Borda and ε-maximin ---

var benchVotes = func() []Ranking {
	g := voting.NewMallows(rng.New(7), voting.Identity(10), 0.6)
	out := make([]Ranking, 1<<14)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}()

func BenchmarkE4BordaInsert(b *testing.B) {
	for _, eps := range []float64{0.05, 0.01} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			bs, err := NewBorda(VoteConfig{
				Candidates: 10, Eps: eps, Delta: 0.1,
				StreamLength: uint64(max(b.N, len(benchVotes))), Seed: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs.Insert(benchVotes[i&(1<<14-1)])
			}
			b.StopTimer()
			b.ReportMetric(float64(bs.ModelBits()), "model-bits")
		})
	}
}

func BenchmarkE5MaximinInsert(b *testing.B) {
	for _, eps := range []float64{0.1, 0.05} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			ms, err := NewMaximin(VoteConfig{
				Candidates: 10, Eps: eps, Delta: 0.1,
				StreamLength: uint64(max(b.N, len(benchVotes))), Seed: 9,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms.Insert(benchVotes[i&(1<<14-1)])
			}
			b.StopTimer()
			b.ReportMetric(float64(ms.ModelBits()), "model-bits")
		})
	}
}

// --- E6: Theorems 7–8 — unknown stream length overhead ---

func BenchmarkE6UnknownLengthInsert(b *testing.B) {
	hh, err := NewListHeavyHitters(Config{
		Eps: 0.05, Phi: 0.15, Delta: 0.1, Universe: 1 << 32, Seed: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Insert(benchStream[i&(1<<20-1)])
	}
	b.StopTimer()
	reportBits(b, hh)
}

// --- E7: Theorem 9 reduction end-to-end ---

func BenchmarkE7Theorem9Reduction(b *testing.B) {
	red := commlower.Theorem9{A: 2, T: 10, Scale: 50}
	src := rng.New(11)
	x := make([]int, red.T)
	for j := range x {
		x[j] = j % red.A
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := red.Run(src.Split(), x, i%red.T)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// --- A1: ablation — Algorithm 2's accelerated counters vs Algorithm 1's
// hashed exact counters at identical (ε, ϕ). The model-bits metrics of
// the two sub-benchmarks are the comparison. ---

func BenchmarkA1Ablation(b *testing.B) {
	for _, algo := range []struct {
		name string
		a    Algorithm
	}{{"accelerated", AlgorithmOptimal}, {"exact-hashed", AlgorithmSimple}} {
		b.Run(algo.name, func(b *testing.B) {
			benchListInsert(b, algo.a, 0.01)
		})
	}
}

// --- A3: ablation — maximin storage: sampled votes (paper) vs pairwise
// matrix. ---

func BenchmarkA3MaximinStorage(b *testing.B) {
	for _, pw := range []struct {
		name string
		on   bool
	}{{"votes", false}, {"pairwise", true}} {
		b.Run(pw.name, func(b *testing.B) {
			ms, err := voting.NewMaximinSketch(rng.New(12), voting.MaximinConfig{
				N: 10, Eps: 0.1, Delta: 0.1,
				M: uint64(max(b.N, len(benchVotes))), Pairwise: pw.on,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms.Insert(benchVotes[i&(1<<14-1)])
			}
			b.StopTimer()
			b.ReportMetric(float64(ms.ModelBits()), "model-bits")
		})
	}
}

// --- A4: baseline field — insert cost of every baseline on the same
// stream. ---

func BenchmarkA4Baselines(b *testing.B) {
	mk := map[string]func() Sketch{
		"misra-gries":  func() Sketch { return NewMisraGries(100, 1<<32) },
		"space-saving": func() Sketch { return NewSpaceSaving(100, 1<<32) },
		"count-min":    func() Sketch { return NewCountMin(13, 0.01, 0.05) },
		"countsketch":  func() Sketch { return NewCountSketch(14, 5, 200) },
		"lossy":        func() Sketch { return NewLossyCounting(0.01, 1<<32) },
		"sticky":       func() Sketch { return NewStickySampling(15, 0.01, 0.1, 0.05, 1<<32) },
	}
	for _, name := range []string{"misra-gries", "space-saving", "count-min", "countsketch", "lossy", "sticky"} {
		b.Run(name, func(b *testing.B) {
			s := mk[name]()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(benchStream[i&(1<<20-1)])
			}
			b.StopTimer()
			reportBits(b, s)
		})
	}
}
