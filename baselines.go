package l1hh

import (
	"repro/internal/cms"
	"repro/internal/countsketch"
	"repro/internal/lossy"
	"repro/internal/mg"
	"repro/internal/rng"
	"repro/internal/spacesaving"
)

// The baselines below are the prior-art algorithms the paper's
// introduction surveys. They are exported so that users (and the
// benchmark harness) can compare space and accuracy against the paper's
// solvers on identical streams.

// MisraGries is the deterministic frequent-items summary [MG82] — the
// O(ε⁻¹(log n + log m))-bit prior state of the art for (ε,ϕ)-heavy
// hitters.
type MisraGries = mg.Summary

// NewMisraGries returns a Misra-Gries summary with k counters over a
// universe of the given size (0 if unknown). k = ⌈1/ε⌉ yields ε·m error.
func NewMisraGries(k int, universe uint64) *MisraGries { return mg.New(k, universe) }

// SpaceSaving is the Space-Saving summary [MAE05] with O(1) worst-case
// updates.
type SpaceSaving = spacesaving.Summary

// NewSpaceSaving returns a Space-Saving summary with k counters.
func NewSpaceSaving(k int, universe uint64) *SpaceSaving {
	return spacesaving.New(k, universe)
}

// CountMin is the Count-Min sketch [CM05].
type CountMin = cms.Sketch

// NewCountMin returns a Count-Min sketch with overcount ≤ ε·m with
// probability 1−δ.
func NewCountMin(seed uint64, eps, delta float64) *CountMin {
	return cms.New(rng.New(seed), eps, delta)
}

// CountSketch is the CountSketch estimator [CCFC04].
type CountSketch = countsketch.Sketch

// NewCountSketch returns a CountSketch with the given depth (rows, use an
// odd number) and width (buckets per row).
func NewCountSketch(seed uint64, depth int, width uint64) *CountSketch {
	return countsketch.New(rng.New(seed), depth, width)
}

// LossyCounting is the deterministic Lossy Counting summary [MM02].
type LossyCounting = lossy.Counting

// NewLossyCounting returns a Lossy Counting summary with error ε·m.
func NewLossyCounting(eps float64, universe uint64) *LossyCounting {
	return lossy.NewCounting(eps, universe)
}

// StickySampling is the randomized Sticky Sampling summary [MM02].
type StickySampling = lossy.Sticky

// NewStickySampling returns a Sticky Sampling summary for support ϕ,
// error ε and failure probability δ.
func NewStickySampling(seed uint64, eps, phi, delta float64, universe uint64) *StickySampling {
	return lossy.NewSticky(rng.New(seed), eps, phi, delta, universe)
}
