package l1hh

import (
	"repro/internal/rng"
	"repro/internal/stream"
)

// StreamGenerator produces one stream item per call.
type StreamGenerator = stream.Generator

// StreamOrder selects how a materialized stream is arranged.
type StreamOrder = stream.Order

// Stream orderings for GeneratePlantedStream.
const (
	// OrderShuffled is a uniform random permutation.
	OrderShuffled = stream.Shuffled
	// OrderSorted keeps all copies of each item contiguous.
	OrderSorted = stream.SortedRuns
	// OrderHeavyLast delivers the heavy items at the end of the stream.
	OrderHeavyLast = stream.HeavyLast
	// OrderInterleave round-robins across items.
	OrderInterleave = stream.Interleave
)

// NewZipfStream returns a Zipf(s) generator over [0, n): item 0 is the
// most frequent. s = 0 is uniform.
func NewZipfStream(seed uint64, n uint64, s float64) StreamGenerator {
	return stream.NewZipf(rng.New(seed), n, s)
}

// NewUniformStream returns a uniform generator over [0, n).
func NewUniformStream(seed uint64, n uint64) StreamGenerator {
	return stream.NewUniform(rng.New(seed), n)
}

// NewPlantedStream returns a generator where item i has relative
// frequency weights[i] and the remaining mass is uniform noise over
// [noiseLo, noiseHi).
func NewPlantedStream(seed uint64, weights []float64, noiseLo, noiseHi uint64) StreamGenerator {
	return stream.NewPlanted(rng.New(seed), weights, noiseLo, noiseHi)
}

// GeneratePlantedStream materializes a stream of exactly m items in which
// item i occurs exactly round(weights[i]·m) times, arranged per order.
func GeneratePlantedStream(seed uint64, m int, weights []float64, noiseLo, noiseHi uint64, order StreamOrder) []Item {
	return stream.PlantedStream(rng.New(seed), m, weights, noiseLo, noiseHi, order)
}

// Generate draws n items from g into a fresh slice.
func Generate(g StreamGenerator, n int) []Item { return stream.Fill(g, n) }
