package l1hh

// pool.go — the multi-tenant front door. A Pool keys independent
// HeavyHitters solvers by tenant name behind one shared model-bits
// budget: engines are built lazily on first insert (pool-level default
// options, with optional per-tenant overrides), and when the resident
// bits exceed the budget the least-recently-used tenant is checkpointed
// to a spill store and revived transparently on its next touch. This is
// the deployment shape the paper's space bound buys — O(ε⁻¹ log ϕ⁻¹ +
// log δ⁻¹ + log log m) bits per sketch means a fixed budget holds
// thousands of hot tenants, and a cold tenant costs only its spilled
// frame (DESIGN.md §13).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/wire"
)

// Errors the pool tier adds; test with errors.Is.
var (
	// ErrTenantBusy is returned by InsertBatchBounded when the
	// tenant's engine stayed busy past the bounded wait (per-tenant
	// operations are serialized; cmd/hhd sheds these as 429).
	ErrTenantBusy = pool.ErrBusy
	// ErrUnknownTenant is returned by read operations (Report,
	// TenantStats, Checkpoint, Evict) for tenants that were never
	// inserted into.
	ErrUnknownTenant = pool.ErrUnknownTenant
	// ErrInvalidTenant rejects empty tenant names and names longer
	// than MaxTenantName bytes.
	ErrInvalidTenant = pool.ErrInvalidTenant
)

// MaxTenantName is the longest tenant name a Pool accepts, in bytes.
const MaxTenantName = pool.MaxTenantName

// SpillStore is where a Pool keeps evicted tenants: one self-validating
// checkpoint frame per tenant. Implementations must be safe for
// concurrent use; Put must be durable (to the store's own standard)
// before returning, because the pool closes the engine right after.
// NewMemSpillStore and NewDiskSpillStore cover the common cases.
type SpillStore interface {
	// Put stores the framed checkpoint for tenant, replacing any
	// previous frame.
	Put(tenant string, frame []byte) error
	// Get returns the stored frame; ok=false is a normal miss.
	Get(tenant string) (frame []byte, ok bool, err error)
	// Delete drops the frame; deleting an absent tenant is no error.
	Delete(tenant string) error
}

// NewMemSpillStore returns an in-memory SpillStore — the default when
// a budgeted pool is built without WithPoolSpill. Spilled tenants
// survive eviction but not the process.
func NewMemSpillStore() SpillStore { return pool.NewMemStore() }

// NewDiskSpillStore returns a SpillStore persisting one file per
// tenant under dir (created if needed), with atomic writes; combined
// with Pool.MarshalBinary checkpoints it makes spilled tenants survive
// restarts.
func NewDiskSpillStore(dir string) (SpillStore, error) { return pool.NewDiskStore(dir) }

// PoolTimings carries optional latency callbacks for the pool's
// spill/revive paths (WithPoolObserver). They run on the eviction and
// revival paths, so implementations should be cheap — a histogram
// observation, not a log line. Nil fields disable that hook.
type PoolTimings struct {
	// Revive observes one spilled tenant's revival: store read, frame
	// validation, engine restore.
	Revive func(d time.Duration)
	// Spill observes one eviction: engine checkpoint encode plus the
	// durable store write.
	Spill func(d time.Duration)
}

// PoolOption configures NewPool and UnmarshalPool.
type PoolOption func(*poolSettings)

// poolSettings is the resolved PoolOption set.
type poolSettings struct {
	defaults []Option
	budget   int64
	store    SpillStore
	timings  PoolTimings
	errs     []error
}

// WithTenantDefaults sets the Option set every tenant's engine is
// built with (WithEps and WithPhi are required here, exactly as for
// New). Per-tenant overrides registered via SetTenantOptions are
// appended after these, so later options win where they overlap.
func WithTenantDefaults(opts ...Option) PoolOption {
	return func(ps *poolSettings) { ps.defaults = append(ps.defaults, opts...) }
}

// WithPoolBudget caps the total model bits of resident engines; past
// it the pool evicts least-recently-used tenants to the spill store.
// 0 (the default) means unlimited — no eviction. On UnmarshalPool a
// positive budget overrides the checkpointed one.
func WithPoolBudget(bits int64) PoolOption {
	return func(ps *poolSettings) {
		if bits < 0 {
			ps.errs = append(ps.errs, fmt.Errorf("l1hh: WithPoolBudget needs bits ≥ 0, got %d", bits))
			return
		}
		ps.budget = bits
	}
}

// WithPoolSpill sets the store evicted tenants are checkpointed to.
// Default: an in-memory store (NewMemSpillStore).
func WithPoolSpill(store SpillStore) PoolOption {
	return func(ps *poolSettings) {
		if store == nil {
			ps.errs = append(ps.errs, errors.New("l1hh: WithPoolSpill needs a non-nil store"))
			return
		}
		ps.store = store
	}
}

// WithPoolObserver installs latency callbacks on the spill and revive
// paths (cmd/hhd feeds them into its stage-duration histograms).
func WithPoolObserver(t PoolTimings) PoolOption {
	return func(ps *poolSettings) { ps.timings = t }
}

// PoolStats is one coherent snapshot of a Pool's occupancy, the
// operational counterpart of a single solver's Stats.
type PoolStats struct {
	// TenantsLive counts resident engines; TenantsSpilled the evicted
	// tenants awaiting revival; TenantsPinned the resident tenants the
	// eviction sweep must skip (pinned or unserializable).
	TenantsLive, TenantsSpilled, TenantsPinned int
	// ModelBitsInUse is the resident total under the paper's
	// accounting; BudgetBits the configured ceiling (0 = unlimited).
	ModelBitsInUse, BudgetBits int64
	// Evictions, Revives and SpillErrors count spill-lifecycle events;
	// TenantsCreated counts first-touch engine constructions.
	Evictions, Revives, SpillErrors, TenantsCreated uint64
	// SpilledBytes sums the frame sizes of currently spilled tenants.
	SpilledBytes int64
	// Items counts every item accepted across all tenants.
	Items uint64
}

// Pool is a tenant-keyed collection of HeavyHitters solvers sharing
// one model-bits budget, with LRU spill/revive (DESIGN.md §13). All
// methods are safe for concurrent use; operations on one tenant are
// serialized, distinct tenants proceed in parallel.
//
// Tenants whose engines cannot spill are handled by classification at
// creation: time-window and accuracy-sentinel tenants are pinned
// (serialized into pool checkpoints but never evicted — a spill gap
// would silently age a wall-clock window and a revived sentinel's
// shadow never saw the restored history), and unknown-stream-length
// tenants are volatile (never evicted, absent from checkpoints).
type Pool struct {
	inner    *pool.Pool
	defaults []Option
	timings  PoolTimings

	items     atomic.Uint64
	overrides ovStore
}

// ovStore guards the per-tenant override registry.
type ovStore struct {
	mu sync.Mutex
	m  map[string][]Option
}

// NewPool builds a multi-tenant pool. WithTenantDefaults must carry a
// valid New option set (WithEps and WithPhi at minimum); every other
// PoolOption is optional — without WithPoolBudget nothing is ever
// evicted, and without WithPoolSpill evictions go to an in-memory
// store.
func NewPool(popts ...PoolOption) (*Pool, error) {
	ps, err := resolvePoolOptions(popts)
	if err != nil {
		return nil, err
	}
	p := &Pool{defaults: ps.defaults, timings: ps.timings}
	p.overrides.m = make(map[string][]Option)
	inner, err := pool.New(p.poolConfig(ps))
	if err != nil {
		return nil, err
	}
	p.inner = inner
	return p, nil
}

// resolvePoolOptions applies popts and validates the tenant defaults
// the same way New would.
func resolvePoolOptions(popts []PoolOption) (poolSettings, error) {
	var ps poolSettings
	for _, o := range popts {
		if o == nil {
			return ps, errors.New("l1hh: nil PoolOption")
		}
		o(&ps)
	}
	if len(ps.errs) > 0 {
		return ps, ps.errs[0]
	}
	st, err := resolveOptions(ps.defaults)
	if err != nil {
		return ps, fmt.Errorf("l1hh: pool tenant defaults: %w", err)
	}
	if err := st.validateNew(); err != nil {
		return ps, fmt.Errorf("l1hh: pool tenant defaults: %w", err)
	}
	if ps.store == nil {
		ps.store = NewMemSpillStore()
	}
	return ps, nil
}

// poolConfig assembles the internal pool wiring over p's settings.
func (p *Pool) poolConfig(ps poolSettings) pool.Config {
	return pool.Config{
		BudgetBits: ps.budget,
		Store:      ps.store,
		Factory:    p.buildTenant,
		Restorer: func(_ string, blob []byte) (pool.Engine, error) {
			return Unmarshal(blob)
		},
		Hooks: pool.Hooks{
			Evicted: func(_ string, d time.Duration, _ int64) {
				if p.timings.Spill != nil {
					p.timings.Spill(d)
				}
			},
			Revived: func(_ string, d time.Duration) {
				if p.timings.Revive != nil {
					p.timings.Revive(d)
				}
			},
		},
	}
}

// buildTenant is the pool's engine factory: defaults plus the tenant's
// registered overrides, classified for spillability.
func (p *Pool) buildTenant(tenant string) (pool.Engine, pool.Mode, error) {
	opts := p.optsFor(tenant)
	st, err := resolveOptions(opts)
	if err != nil {
		return nil, 0, err
	}
	if err := st.validateNew(); err != nil {
		return nil, 0, err
	}
	hh, err := New(opts...)
	if err != nil {
		return nil, 0, err
	}
	return hh, classifyMode(&st), nil
}

// classifyMode maps a resolved option set to its spill behaviour.
func classifyMode(st *settings) pool.Mode {
	switch {
	case st.has(optTimeWindow | optSentinel):
		return pool.Pinned
	case !st.has(optStreamLength) && !st.has(optCountWindow):
		// Unknown stream length: the Theorem 7 machinery is not
		// serializable at all.
		return pool.Volatile
	default:
		return pool.Spillable
	}
}

// optsFor returns defaults plus the tenant's overrides.
func (p *Pool) optsFor(tenant string) []Option {
	p.overrides.mu.Lock()
	ov := p.overrides.m[tenant]
	p.overrides.mu.Unlock()
	if len(ov) == 0 {
		return p.defaults
	}
	out := make([]Option, 0, len(p.defaults)+len(ov))
	out = append(out, p.defaults...)
	return append(out, ov...)
}

// SetTenantOptions registers per-tenant Option overrides, applied
// after the pool defaults when the tenant's engine is built. It must
// run before the tenant's first touch: once an engine exists (resident
// or spilled) the options are part of its state and the call fails.
// Overrides are not serialized into pool checkpoints — re-register
// them after UnmarshalPool, where they again apply only to tenants the
// checkpoint does not already carry.
func (p *Pool) SetTenantOptions(tenant string, opts ...Option) error {
	if tenant == "" || len(tenant) > MaxTenantName {
		return ErrInvalidTenant
	}
	combined := append(append([]Option(nil), p.defaults...), opts...)
	st, err := resolveOptions(combined)
	if err != nil {
		return err
	}
	if err := st.validateNew(); err != nil {
		return err
	}
	p.overrides.mu.Lock()
	defer p.overrides.mu.Unlock()
	if p.inner.Known(tenant) {
		return fmt.Errorf("l1hh: tenant %q already has an engine — options apply at first touch", tenant)
	}
	p.overrides.m[tenant] = append([]Option(nil), opts...)
	return nil
}

// Insert feeds one item into tenant's engine, creating or reviving it
// as needed.
func (p *Pool) Insert(tenant string, x Item) error {
	err := p.inner.Do(tenant, func(e pool.Engine) error {
		return e.(HeavyHitters).Insert(x)
	})
	if err == nil {
		p.items.Add(1)
	}
	return err
}

// InsertBatch feeds a batch into tenant's engine, the amortized fast
// path. The input slice is not retained.
func (p *Pool) InsertBatch(tenant string, items []Item) error {
	err := p.inner.Do(tenant, func(e pool.Engine) error {
		return e.(HeavyHitters).InsertBatch(items)
	})
	if err == nil {
		p.items.Add(uint64(len(items)))
	}
	return err
}

// InsertBatchBounded inserts like InsertBatch but bounds both waits a
// multi-tenant server cares about: ErrTenantBusy when the tenant's
// engine stayed busy past wait, and — for tenants whose engines are
// Shedders (sharded overrides) — ErrSaturated from the engine's own
// bounded enqueue. Either error means back off and retry. wait is one
// shared bound: whatever the wait for the tenant's engine consumed is
// deducted from the wait given to the engine's bounded enqueue, so the
// total block stays within wait (plus any unbounded first-touch
// creation or revival, after which the enqueue degrades to try-only).
func (p *Pool) InsertBatchBounded(tenant string, items []Item, wait time.Duration) error {
	start := time.Now()
	err := p.inner.DoBounded(tenant, wait, func(e pool.Engine) error {
		hh := e.(HeavyHitters)
		if sh, ok := hh.(Shedder); ok {
			remaining := wait - time.Since(start)
			if remaining < 0 {
				remaining = 0
			}
			return sh.InsertBatchBounded(items, remaining)
		}
		return hh.InsertBatch(items)
	})
	if err == nil {
		p.items.Add(uint64(len(items)))
	}
	return err
}

// Vote feeds one ballot into tenant's engine, creating or reviving it
// as needed — the voting analogue of Insert. The tenant must be
// configured with a voting problem (WithProblem(BordaProblem) or
// WithProblem(MaximinProblem) in its defaults or overrides);
// non-voting tenants refuse.
func (p *Pool) Vote(tenant string, r Ranking) error {
	err := p.inner.Do(tenant, func(e pool.Engine) error {
		v, ok := e.(Voter)
		if !ok {
			return fmt.Errorf("tenant %q: %w", tenant, ErrNotRankings)
		}
		return v.Vote(r)
	})
	if err == nil {
		p.items.Add(1)
	}
	return err
}

// View runs f over tenant's engine under the tenant's serialization,
// reviving it if spilled — the generic read path for capability
// queries: assert Voter, Extremes or PointQuerier on the engine inside
// f. Unknown tenants get ErrUnknownTenant — a view never creates an
// engine. The engine must not be retained or used outside f.
func (p *Pool) View(tenant string, f func(hh HeavyHitters) error) error {
	return p.inner.View(tenant, func(e pool.Engine) error {
		return f(e.(HeavyHitters))
	})
}

// Report returns tenant's heavy hitters under its engine's (ε,ϕ)
// guarantee, reviving the tenant if it was spilled. Unknown tenants
// get ErrUnknownTenant — a report never creates an engine.
func (p *Pool) Report(tenant string) ([]ItemEstimate, error) {
	var rep []ItemEstimate
	err := p.inner.View(tenant, func(e pool.Engine) error {
		rep = e.(HeavyHitters).Report()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// TenantStats returns one tenant's operational snapshot (reviving it
// if spilled); ErrUnknownTenant for tenants never inserted into.
func (p *Pool) TenantStats(tenant string) (Stats, error) {
	var st Stats
	err := p.inner.View(tenant, func(e pool.Engine) error {
		st = e.(HeavyHitters).Stats()
		return nil
	})
	return st, err
}

// Checkpoint serializes one tenant's engine — the same bytes Unmarshal
// accepts, so a single tenant can be exported out of the pool.
func (p *Pool) Checkpoint(tenant string) ([]byte, error) {
	var blob []byte
	err := p.inner.View(tenant, func(e pool.Engine) error {
		var merr error
		blob, merr = e.MarshalBinary()
		return merr
	})
	if err != nil {
		return nil, err
	}
	return blob, nil
}

// Evict forces tenant out to the spill store regardless of budget
// pressure (an operator lever; the budget sweep normally decides).
// Pinned and volatile tenants refuse.
func (p *Pool) Evict(tenant string) error { return p.inner.Evict(tenant) }

// Tenants returns the sorted names of every tenant the pool knows,
// resident and spilled.
func (p *Pool) Tenants() []string { return p.inner.Tenants() }

// Stats returns the pool-wide occupancy snapshot.
func (p *Pool) Stats() PoolStats {
	st := p.inner.Stats()
	return PoolStats{
		TenantsLive:    st.TenantsLive,
		TenantsSpilled: st.TenantsSpilled,
		TenantsPinned:  st.TenantsPinned,
		ModelBitsInUse: st.BitsInUse,
		BudgetBits:     st.BudgetBits,
		Evictions:      st.Evictions,
		Revives:        st.Revives,
		SpillErrors:    st.SpillErrors,
		TenantsCreated: st.Created,
		SpilledBytes:   st.SpilledBytes,
		Items:          p.items.Load(),
	}
}

// poolFrameVersion versions the tagPool container layout (inside it,
// the manifest carries its own version).
const poolFrameVersion = 1

// MarshalBinary checkpoints the whole pool: every serializable tenant
// (resident and spilled, pinned included) plus the budget and the
// accepted-item counter. Volatile tenants are omitted — they cannot
// serialize. Per-tenant state is consistent; the manifest is not a
// cross-tenant barrier. Restore with UnmarshalPool.
func (p *Pool) MarshalBinary() ([]byte, error) {
	mblob, err := p.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter()
	w.U64(poolFrameVersion)
	w.U64(p.items.Load())
	w.Blob(mblob)
	return append([]byte{tagPool}, w.Bytes()...), nil
}

// Close stops the pool: every resident engine is closed and subsequent
// operations return ErrClosed. MarshalBinary still works afterwards —
// the shutdown sequence is Close then a final checkpoint. Idempotent.
func (p *Pool) Close() error { return p.inner.Close() }

// IsPoolCheckpoint reports whether data is a Pool checkpoint (restore
// with UnmarshalPool) as opposed to a single-solver one (Unmarshal).
func IsPoolCheckpoint(data []byte) bool {
	return len(data) > 0 && data[0] == tagPool
}

// UnmarshalPool restores a Pool from MarshalBinary bytes. Every
// checkpointed tenant starts spilled — seeded into the spill store and
// revived lazily on first touch, so a restart pays nothing for tenants
// that never come back. popts carries the runtime wiring exactly as
// NewPool: WithTenantDefaults governs tenants the checkpoint does not
// know, WithPoolBudget (when positive) overrides the checkpointed
// budget, WithPoolSpill/WithPoolObserver re-attach the store and the
// instrumentation. Per-tenant overrides and accuracy sentinels are not
// serialized (a restored history was never sampled); re-register what
// still applies.
func UnmarshalPool(data []byte, popts ...PoolOption) (*Pool, error) {
	if !IsPoolCheckpoint(data) {
		return nil, errors.New("l1hh: not a pool checkpoint (see Unmarshal for single-solver encodings)")
	}
	r := wire.NewReader(data[1:])
	if v := r.U64(); r.Err() == nil && v != poolFrameVersion {
		return nil, fmt.Errorf("l1hh: unsupported pool checkpoint version %d", v)
	}
	items := r.U64()
	mblob := r.Blob()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("l1hh: pool checkpoint: %w", err)
	}
	if !r.Done() {
		return nil, errors.New("l1hh: trailing junk after the pool checkpoint")
	}
	ps, err := resolvePoolOptions(popts)
	if err != nil {
		return nil, err
	}
	p := &Pool{defaults: ps.defaults, timings: ps.timings}
	p.overrides.m = make(map[string][]Option)
	inner, err := pool.Restore(mblob, p.poolConfig(ps))
	if err != nil {
		return nil, err
	}
	p.inner = inner
	p.items.Store(items)
	return p, nil
}
