// Package l1hh is a complete Go implementation of "An Optimal Algorithm
// for ℓ1-Heavy Hitters in Insertion Streams and Related Problems"
// (Bhattacharyya, Dey, Woodruff — PODS 2016), grown into a concurrent
// streaming system: serial solvers, a sharded multi-core ingest engine,
// a distributed merge tier, and sliding windows.
//
// # What it provides
//
// Streaming solvers with the paper's optimal space bounds:
//
//   - ListHeavyHitters — the (ε,ϕ)-heavy hitters problem: one pass over a
//     stream of items, report every item with frequency ≥ ϕ·m, no item
//     with frequency ≤ (ϕ−ε)·m, and per-item estimates within ε·m.
//     Two engines: Algorithm 1 (simple, near-optimal) and Algorithm 2
//     (optimal, accelerated counters).
//   - Maximum — the ε-Maximum problem / ℓ∞ approximation (IITK 2006 Open
//     Question 3 for ℓ1): the most frequent item and its frequency ± ε·m.
//   - Minimum — the ε-Minimum problem: an item of approximately minimum
//     frequency over a small universe (dislike counting, anomaly
//     detection).
//   - Borda and Maximin sketches — rank-aggregation heavy hitters over
//     streams of votes (total orders), per Theorems 5 and 6.
//   - Unknown-length variants of all of the above (Theorems 7–8), which
//     need no advance knowledge of the stream length.
//
// And three system tiers layered over them:
//
//   - ShardedListHeavyHitters — concurrent ingest: the universe
//     hash-partitioned across N solver shards, each owned by a worker
//     goroutine, with batched insertion from any number of producers,
//     merged reports at global thresholds, and coordinated checkpoints
//     (DESIGN.md §3).
//   - MergeFrom / MergeCheckpoint — the distributed merge tier: solvers
//     built from the same Config (seed included) on different nodes fold
//     into one summary whose Report answers for the concatenated stream
//     (DESIGN.md §7). Incompatible states refuse with
//     ErrIncompatibleMerge.
//   - WindowedListHeavyHitters — sliding windows: answer (ε,ϕ)-heavy
//     hitters over the last W items or the last D of wall time instead
//     of the whole stream, by folding epoch buckets with the merge
//     tier's rules at report time; the error bound degrades by at most
//     one retired epoch's mass (DESIGN.md §8). Set ShardedConfig.Window
//     to run one window per shard behind the concurrent path.
//
// Plus the classic baselines the paper compares against (Misra-Gries,
// Space-Saving, Count-Min, CountSketch, Lossy Counting, Sticky Sampling),
// synthetic workload generators, and the paper's lower-bound reductions
// as executable artifacts (internal/commlower). cmd/hhd serves the whole
// stack over HTTP.
//
// # Quick start
//
//	cfg := l1hh.Config{Eps: 0.01, Phi: 0.05, Delta: 0.05,
//		StreamLength: 1_000_000, Universe: 1 << 32, Seed: 42}
//	hh, err := l1hh.NewListHeavyHitters(cfg)
//	if err != nil { ... }
//	for _, x := range stream {
//		hh.Insert(x)
//	}
//	for _, r := range hh.Report() {
//		fmt.Printf("item %d ≈ %.0f occurrences\n", r.Item, r.F)
//	}
//
// The Example functions on this page are runnable versions of the same
// flow for the windowed, sharded and merge tiers.
//
// # Choosing an engine
//
// AlgorithmOptimal (the default) is the paper's space-optimal Algorithm
// 2; its accelerated counters carry an O(1/ε) additive error term, so
// it wants m ≫ ε⁻². AlgorithmSimple is Algorithm 1: slightly more
// space, exact counting whenever the stream is within its sample budget
// — which makes it the right engine for small streams and small
// windows (DESIGN.md §8).
//
// # Space accounting
//
// Every sketch has ModelBits, which reports its size in bits under the
// paper's accounting model (variable-length BB08 counters, ⌈log₂ n⌉-bit
// ids, O(log n)-bit hash seeds, O(log log m)-bit samplers). This is the
// number Table 1 of the paper bounds, and what the benchmark harness
// sweeps. Aggregates are honest: K shards cost K sketches, a B-bucket
// window costs B+1 window-scale sketches. See DESIGN.md for the model,
// EXPERIMENTS.md for measurements.
//
// All randomness is seeded: the same Config produces the same answers on
// the same stream, and same-seed solvers on different nodes are what
// the merge tier folds.
package l1hh
