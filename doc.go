// Package l1hh is a complete Go implementation of "An Optimal Algorithm
// for ℓ1-Heavy Hitters in Insertion Streams and Related Problems"
// (Bhattacharyya, Dey, Woodruff — PODS 2016), grown into a concurrent
// streaming system: serial solvers, a sharded multi-core ingest engine,
// a distributed merge tier, and sliding windows — all behind one front
// door.
//
// # One front door
//
// Every heavy hitters solver is built by New from functional options and
// used through the HeavyHitters interface:
//
//	hh, err := l1hh.New(
//		l1hh.WithEps(0.01), l1hh.WithPhi(0.05),
//		l1hh.WithStreamLength(1_000_000), l1hh.WithSeed(42),
//	)
//	if err != nil { ... }
//	for _, x := range stream {
//		if err := hh.Insert(x); err != nil { ... } // ErrClosed after Close
//	}
//	for _, r := range hh.Report() {
//		fmt.Printf("item %d ≈ %.0f occurrences\n", r.Item, r.F)
//	}
//
// The same call composes every tier — options stack in any order and the
// resulting engine stack is canonical (DESIGN.md §9):
//
//	l1hh.New(l1hh.WithEps(ε), l1hh.WithPhi(ϕ))                          // unknown stream length (Theorem 7)
//	l1hh.New(..., l1hh.WithStreamLength(m))                             // known length (serializable, mergeable)
//	l1hh.New(..., l1hh.WithStreamLength(m), l1hh.WithPacedBudget(1))    // strict O(1) worst-case inserts (§3.1)
//	l1hh.New(..., l1hh.WithShards(8))                                   // concurrent sharded ingest (DESIGN.md §3)
//	l1hh.New(..., l1hh.WithCountWindow(1e6, 64))                        // heavy hitters of the last 10⁶ items (§8)
//	l1hh.New(..., l1hh.WithShards(8), l1hh.WithCountWindow(1e6, 64))    // concurrent windowed ingest
//
// What a particular composition can additionally do is discovered by
// asserting small capability interfaces, never by naming concrete types:
//
//	if m, ok := hh.(l1hh.Merger); ok { m.Merge(peerCheckpoint) }  // distributed fold (DESIGN.md §7)
//	if w, ok := hh.(l1hh.Windower); ok { w.WindowStats() }        // sliding-window coverage
//	if f, ok := hh.(l1hh.Flusher); ok { f.Flush() }               // drain buffered work
//	if s, ok := hh.(l1hh.Sharder); ok { _ = s.Shards() }          // concurrent-ingest marker
//	if p, ok := hh.(l1hh.Pacable); ok { _ = p.PacedBudget() }     // bounded per-insert work
//
// Checkpoints restore through the universal Unmarshal, whatever
// container produced them (serial, sharded, windowed, both):
//
//	blob, _ := hh.MarshalBinary()
//	restored, err := l1hh.Unmarshal(blob, l1hh.WithQueueDepth(128))
//
// # Related problems
//
// WithProblem keys the same front door to the paper's Related Problems
// (Theorems 5, 6 and §4): the default HeavyHittersProblem ingests items,
// the voting problems ingest ballots, and the extremes problems answer
// frequency-extreme queries. Each problem has its own option vocabulary
// — New rejects options outside it with an error naming the conflict —
// and its own capability interface discovered by type assertion:
//
//	v, _ := l1hh.New(
//		l1hh.WithProblem(l1hh.BordaProblem), l1hh.WithCandidates(10),
//		l1hh.WithEps(0.01), l1hh.WithPhi(0.1), l1hh.WithDelta(0.05),
//		l1hh.WithStreamLength(1_000_000), l1hh.WithSeed(42),
//	)
//	voter := v.(l1hh.Voter)                    // BordaProblem, MaximinProblem
//	_ = voter.Vote(l1hh.Ranking{2, 0, 1, ...}) // one ballot: a total order
//	winner, score := voter.Winner()            // Borda: score within ε·m·n
//
//	e, _ := l1hh.New(
//		l1hh.WithProblem(l1hh.MinFrequencyProblem), l1hh.WithUniverse(1000),
//		l1hh.WithEps(0.01), l1hh.WithDelta(0.05), l1hh.WithStreamLength(1_000_000),
//	)
//	min := e.(l1hh.Extremes)                 // MinFrequencyProblem, MaxFrequencyProblem
//	est, bound, _ := min.MinItem()           // estimate within bound = ε·m
//
//	if q, ok := hh.(l1hh.PointQuerier); ok { // serial and sharded heavy hitters
//		_ = q.Estimate(17)                   // any item's frequency ± ε·m
//	}
//
// Currency errors are sentinels: Insert on a voting engine returns
// ErrNotItems, Vote on an items engine returns ErrNotRankings. The
// problem travels with the checkpoint (tags 7–10), so Unmarshal restores
// a Borda sketch as a Voter without being told. cmd/hhd serves the
// problems over /vote, /winner, /extremes and /point (-problem flag),
// and pool tenants can override the problem per tenant. DESIGN.md §14.
//
// # Multi-tenant pools
//
// NewPool keys independent sketches by tenant name behind one shared
// model-bits budget: a tenant's engine is built from the pool defaults
// on first touch, the least-recently-used tenant is checkpointed out to
// a spill store when the budget overflows, and a spilled tenant is
// revived transparently — bit-identical — on its next touch
// (DESIGN.md §13). One budget of B bits serves far more than
// B/ModelBits tenants; only the hot set is resident.
//
//	p, err := l1hh.NewPool(
//		l1hh.WithTenantDefaults(
//			l1hh.WithEps(0.01), l1hh.WithPhi(0.05),
//			l1hh.WithStreamLength(1_000_000), l1hh.WithSeed(42)),
//		l1hh.WithPoolBudget(50_000_000),                      // bits; 0 = never evict
//		l1hh.WithPoolSpill(l1hh.NewDiskSpillStore(spillDir)), // default: in-memory
//	)
//	if err != nil { ... }
//	_ = p.Insert("alice", 17)                 // first touch builds alice's engine
//	rep, err := p.Report("alice")             // revives alice if she was spilled
//	blob, _ := p.MarshalBinary()              // whole pool, spilled tenants included
//	restored, err := l1hh.UnmarshalPool(blob, l1hh.WithTenantDefaults( /* same */ ))
//
// Time-window and accuracy-sentinel tenants are pinned resident (their
// state cannot survive a spill gap), unknown-length tenants are
// volatile (never spilled, absent from pool checkpoints), and
// everything else spills. cmd/hhd mounts a pool under /t/{tenant}/…
// routes with -tenants.
//
// The per-type constructors of earlier releases (NewListHeavyHitters,
// NewShardedListHeavyHitters, NewWindowedListHeavyHitters and their
// Unmarshal counterparts) remain as deprecated shims over the same
// engines; their checkpoint bytes are interchangeable with the new API
// in both directions. README.md carries the old→new migration table.
//
// # What it provides
//
// Streaming solvers with the paper's optimal space bounds:
//
//   - New — the (ε,ϕ)-heavy hitters problem: one pass over a stream of
//     items, report every item with frequency ≥ ϕ·m, no item with
//     frequency ≤ (ϕ−ε)·m, and per-item estimates within ε·m. Two
//     engines: Algorithm 1 (simple, near-optimal) and Algorithm 2
//     (optimal, accelerated counters); unknown-length variants
//     (Theorems 7–8) when WithStreamLength is omitted.
//   - Maximum — the ε-Maximum problem / ℓ∞ approximation (IITK 2006 Open
//     Question 3 for ℓ1): the most frequent item and its frequency ± ε·m.
//   - Minimum — the ε-Minimum problem: an item of approximately minimum
//     frequency over a small universe (dislike counting, anomaly
//     detection).
//   - Borda and Maximin sketches — rank-aggregation heavy hitters over
//     streams of votes (total orders), per Theorems 5 and 6.
//
// And three system tiers composed by New:
//
//   - WithShards — concurrent ingest: the universe hash-partitioned
//     across N solver shards, each owned by a worker goroutine, with
//     batched insertion from any number of producers, merged reports at
//     global thresholds, and coordinated checkpoints (DESIGN.md §3).
//   - Merger — the distributed merge tier: solvers built from the same
//     options (seed included) on different nodes fold into one summary
//     whose Report answers for the concatenated stream (DESIGN.md §7).
//     Incompatible states refuse with ErrIncompatibleMerge.
//   - WithCountWindow / WithTimeWindow — sliding windows: answer
//     (ε,ϕ)-heavy hitters over the last W items or the last D of wall
//     time instead of the whole stream, by folding epoch buckets with
//     the merge tier's rules at report time; the error bound degrades by
//     at most one retired epoch's mass (DESIGN.md §8).
//
// Plus the classic baselines the paper compares against (Misra-Gries,
// Space-Saving, Count-Min, CountSketch, Lossy Counting, Sticky Sampling),
// synthetic workload generators, and the paper's lower-bound reductions
// as executable artifacts (internal/commlower). cmd/hhd serves the whole
// stack over HTTP; cmd/hhcli runs it over files and pipes.
//
// # Choosing an engine
//
// AlgorithmOptimal (the default) is the paper's space-optimal Algorithm
// 2; its accelerated counters carry an O(1/ε) additive error term, so
// it wants m ≫ ε⁻². AlgorithmSimple is Algorithm 1: slightly more
// space, exact counting whenever the stream is within its sample budget
// — which makes it the right engine for small streams and small
// windows (DESIGN.md §8).
//
// # Space accounting
//
// Every sketch has ModelBits, which reports its size in bits under the
// paper's accounting model (variable-length BB08 counters, ⌈log₂ n⌉-bit
// ids, O(log n)-bit hash seeds, O(log log m)-bit samplers). This is the
// number Table 1 of the paper bounds, and what the benchmark harness
// sweeps. Aggregates are honest: K shards cost K sketches, a B-bucket
// window costs B+1 window-scale sketches. Stats returns the same number
// alongside the rest of the operational snapshot. See DESIGN.md for the
// model, EXPERIMENTS.md for measurements.
//
// All randomness is seeded: the same options produce the same answers on
// the same stream, and same-seed solvers on different nodes are what
// the merge tier folds.
package l1hh
