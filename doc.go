// Package l1hh is a complete Go implementation of "An Optimal Algorithm
// for ℓ1-Heavy Hitters in Insertion Streams and Related Problems"
// (Bhattacharyya, Dey, Woodruff — PODS 2016).
//
// # What it provides
//
// Streaming solvers with the paper's optimal space bounds:
//
//   - ListHeavyHitters — the (ε,ϕ)-heavy hitters problem: one pass over a
//     stream of items, report every item with frequency ≥ ϕ·m, no item
//     with frequency ≤ (ϕ−ε)·m, and per-item estimates within ε·m.
//     Two engines: Algorithm 1 (simple, near-optimal) and Algorithm 2
//     (optimal, accelerated counters).
//   - Maximum — the ε-Maximum problem / ℓ∞ approximation (IITK 2006 Open
//     Question 3 for ℓ1): the most frequent item and its frequency ± ε·m.
//   - Minimum — the ε-Minimum problem: an item of approximately minimum
//     frequency over a small universe (dislike counting, anomaly
//     detection).
//   - Borda and Maximin sketches — rank-aggregation heavy hitters over
//     streams of votes (total orders), per Theorems 5 and 6.
//   - Unknown-length variants of all of the above (Theorems 7–8), which
//     need no advance knowledge of the stream length.
//   - ShardedListHeavyHitters — the concurrent ingest engine: the
//     universe hash-partitioned across N solver shards, each owned by a
//     worker goroutine, with batched insertion from any number of
//     producers, merged reports at global thresholds, and coordinated
//     checkpoints (DESIGN.md §3). cmd/hhd serves it over HTTP.
//
// Plus the classic baselines the paper compares against (Misra-Gries,
// Space-Saving, Count-Min, CountSketch, Lossy Counting, Sticky Sampling),
// synthetic workload generators, and the paper's lower-bound reductions
// as executable artifacts (internal/commlower).
//
// # Quick start
//
//	cfg := l1hh.Config{Eps: 0.01, Phi: 0.05, Delta: 0.05,
//		StreamLength: 1_000_000, Universe: 1 << 32, Seed: 42}
//	hh, err := l1hh.NewListHeavyHitters(cfg)
//	if err != nil { ... }
//	for _, x := range stream {
//		hh.Insert(x)
//	}
//	for _, r := range hh.Report() {
//		fmt.Printf("item %d ≈ %.0f occurrences\n", r.Item, r.F)
//	}
//
// # Space accounting
//
// Every sketch has ModelBits, which reports its size in bits under the
// paper's accounting model (variable-length BB08 counters, ⌈log₂ n⌉-bit
// ids, O(log n)-bit hash seeds, O(log log m)-bit samplers). This is the
// number Table 1 of the paper bounds, and what the benchmark harness
// sweeps. See DESIGN.md for the model, EXPERIMENTS.md for measurements.
//
// All randomness is seeded: the same Config produces the same answers on
// the same stream.
package l1hh
