package l1hh

// Windowed conformance suite: WindowedListHeavyHitters (serially and
// through the sharded path) must answer (ε,ϕ)-heavy hitters for the
// sliding window — every item with window-frequency ≥ ϕ·W reported,
// nothing reported below (ϕ−ε)·M over the covered mass M, estimates
// within ε·M — across zipf, uniform and adversarial regime-shift
// streams, for W ∈ {10³, 10⁵}, with checkpoint round-trips preserving
// reports bit-identically. Count-mode windows cover an exact stream
// suffix, so the serial assertions run against exact suffix counts.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/exact"
)

// Window conformance parameters.
const (
	winEps = 0.05
	winPhi = 0.1
)

// windowAlgos returns the engines whose valid regime covers per-bucket
// streams of window length w. Algorithm 2's accelerated counters carry
// an O(1/ε) additive error that must stay below ε·W, so it needs
// W ≫ ε⁻²; small windows are Algorithm 1 territory — it counts exactly
// at that scale (DESIGN.md §8).
func windowAlgos(w uint64) map[Algorithm]string {
	if w <= 10_000 {
		return map[Algorithm]string{AlgorithmSimple: "simple"}
	}
	return map[Algorithm]string{AlgorithmOptimal: "optimal", AlgorithmSimple: "simple"}
}

// windowStreams materializes the fixed windowed test streams for window
// length w: 1.5·w of one regime followed by 1.25·w of another, so the
// window covers only the tail regime and the whole-stream answer
// differs from the window answer.
func windowStreams(w uint64) map[string][]Item {
	n := int(w)
	shift := func(seedA, seedB uint64, wa, wb []float64) []Item {
		a := GeneratePlantedStream(seedA, 3*n/2, wa, 1<<20, 1<<30, OrderShuffled)
		b := GeneratePlantedStream(seedB, 5*n/4, wb, 1<<20, 1<<30, OrderShuffled)
		return append(a, b...)
	}
	return map[string][]Item{
		// Stationary zipf: the same ids are heavy in every window.
		"zipf": Generate(NewZipfStream(211, 1<<20, 1.3), 11*n/4),
		// Stationary uniform over 8 ids: all of them 0.125 ≥ ϕ heavy.
		"uniform": Generate(NewUniformStream(223, 8), 11*n/4),
		// Adversarial regime shift: items 1–3 carry the first phase,
		// items 11–13 the second; the window must report the second
		// family and have fully forgotten the first.
		"regime-shift": shift(227, 229,
			[]float64{0, 0.20, 0.12, 0.06},                                // phase 1: ids 1,2,3 heavy
			[]float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0.20, 0.12, 0.06}), // phase 2: ids 11,12,13
	}
}

// plantedWeights returns the planted heavy ids of each windowStreams
// phase relevant to the window (the tail regime).
var windowHeavy = map[string][]Item{
	"regime-shift": {11, 12, 13},
}
var windowStale = map[string][]Item{
	"regime-shift": {1, 2, 3},
}

// suffixCounts counts the last n items of stream exactly.
func suffixCounts(stream []Item, n uint64) *exact.Counter {
	c := exact.New()
	for _, x := range stream[uint64(len(stream))-n:] {
		c.Insert(x)
	}
	return c
}

// assertWindowReport checks the (ε,ϕ) window contract for a report over
// a count window of length w whose covered mass is m (so the report's
// exact coverage is the last m items of stream).
func assertWindowReport(t *testing.T, stream []Item, rep []ItemEstimate, w, m uint64) {
	t.Helper()
	cap := (w + 7) / 8 // default WindowBuckets = 8
	if m < min(w, uint64(len(stream))) || (uint64(len(stream)) >= w+cap && m >= w+cap) {
		t.Fatalf("covered mass %d outside [min(W,len), W+cap) for W=%d", m, w)
	}
	covered := suffixCounts(stream, m)
	window := suffixCounts(stream, min(w, uint64(len(stream))))
	got := make(map[Item]float64, len(rep))
	for _, r := range rep {
		got[r.Item] = r.F
	}
	// Inclusion: window-frequency ≥ ϕ·W ⇒ reported.
	phiW := winPhi * float64(min(w, uint64(len(stream))))
	for _, x := range window.Items() {
		if float64(window.Freq(x)) >= phiW {
			if _, ok := got[x]; !ok {
				t.Errorf("item %d has window frequency %d ≥ ϕW=%.0f but is not reported",
					x, window.Freq(x), phiW)
			}
		}
	}
	// Exclusion and estimates, against the exact covered suffix.
	for x, f := range got {
		truth := float64(covered.Freq(x))
		if truth <= (winPhi-winEps)*float64(m) {
			t.Errorf("item %d reported with covered frequency %.0f ≤ (ϕ−ε)M=%.0f",
				x, truth, (winPhi-winEps)*float64(m))
		}
		if diff := f - truth; diff < -winEps*float64(m) || diff > winEps*float64(m) {
			t.Errorf("item %d estimate %.0f vs covered frequency %.0f exceeds εM=%.0f",
				x, f, truth, winEps*float64(m))
		}
	}
}

// TestWindowedConformanceSerial: both engines, all stream shapes,
// W ∈ {10³, 10⁵}, with a checkpoint round-trip mid-stream and a
// bit-identical report check at the end.
func TestWindowedConformanceSerial(t *testing.T) {
	for _, w := range []uint64{1_000, 100_000} {
		for name, stream := range windowStreams(w) {
			for algo, algoName := range windowAlgos(w) {
				t.Run(fmt.Sprintf("%s/W=%d/%s", name, w, algoName), func(t *testing.T) {
					hh, err := NewWindowedListHeavyHitters(WindowConfig{
						Config: Config{
							Eps: winEps, Phi: winPhi, Delta: 0.05,
							Universe: 1 << 31, Algorithm: algo, Seed: 7,
						},
						Window: w,
					})
					if err != nil {
						t.Fatal(err)
					}
					// First half, checkpoint, restore, second half on the
					// restored solver: the window must survive the trip.
					half := len(stream) / 2
					for _, x := range stream[:half] {
						hh.Insert(x)
					}
					blob, err := hh.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					restored, err := UnmarshalWindowedListHeavyHitters(blob)
					if err != nil {
						t.Fatal(err)
					}
					for _, x := range stream[half:] {
						restored.Insert(x)
					}
					m := restored.Len()
					rep := restored.Report()
					assertWindowReport(t, stream, rep, w, m)
					for _, x := range windowStale[name] {
						for _, r := range rep {
							if r.Item == x {
								t.Errorf("stale heavy item %d still reported with %.0f", x, r.F)
							}
						}
					}
					// Round-trip at the end: reports must be bit-identical.
					blob2, err := restored.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					twin, err := UnmarshalWindowedListHeavyHitters(blob2)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rep, twin.Report()) {
						t.Error("checkpoint round-trip changed the report")
					}
					blob3, err := twin.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(blob2, blob3) {
						t.Error("re-marshalling a restored solver changed the encoding")
					}
				})
			}
		}
	}
}

// TestWindowedConformanceSharded: the same streams through the sharded
// path. Per-shard windows cover per-substream suffixes, which union to
// approximately the global suffix; the assertions use the planted
// margins rather than exact suffix counts.
func TestWindowedConformanceSharded(t *testing.T) {
	for _, w := range []uint64{1_000, 100_000} {
		for name, stream := range windowStreams(w) {
			algo := AlgorithmOptimal
			if w <= 10_000 {
				algo = AlgorithmSimple // per-shard windows are W/4: small-window regime
			}
			t.Run(fmt.Sprintf("%s/W=%d", name, w), func(t *testing.T) {
				sh, err := NewShardedListHeavyHitters(ShardedConfig{
					Config: Config{
						Eps: winEps, Phi: winPhi, Delta: 0.05,
						Universe: 1 << 31, Algorithm: algo, Seed: 7,
					},
					Shards: 4,
					Window: w,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer sh.Close()
				if err := sh.InsertBatch(stream); err != nil {
					t.Fatal(err)
				}
				rep := sh.Report()
				m := sh.Len()
				if m < w/2 || m > 2*w {
					t.Fatalf("global covered mass %d implausible for W=%d", m, w)
				}
				got := make(map[Item]float64, len(rep))
				for _, r := range rep {
					got[r.Item] = r.F
				}
				// The tail regime's planted heavies are ≥ 0.06 ≥ ϕ+ε of
				// any window; they must be reported. Stale heavies must
				// be gone.
				window := suffixCounts(stream, min(w, uint64(len(stream))))
				phiW := winPhi * float64(min(w, uint64(len(stream))))
				for _, x := range window.Items() {
					if float64(window.Freq(x)) >= phiW*1.5 { // generous margin for shard skew
						if _, ok := got[x]; !ok {
							t.Errorf("item %d window frequency %d well above ϕW=%.0f but unreported",
								x, window.Freq(x), phiW)
						}
					}
				}
				for _, x := range windowStale[name] {
					if f, ok := got[x]; ok {
						t.Errorf("stale heavy item %d still reported with %.0f", x, f)
					}
				}
				// Checkpoint round-trip: report must be bit-identical.
				blob, err := sh.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := UnmarshalShardedListHeavyHitters(blob, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer restored.Close()
				if !restored.Windowed() {
					t.Fatal("restored solver lost its window")
				}
				if !reflect.DeepEqual(rep, restored.Report()) {
					t.Error("sharded checkpoint round-trip changed the report")
				}
				if st, ok := restored.WindowStats(); !ok || st.Covered != m {
					t.Errorf("restored WindowStats covered %d ok=%v, want %d", st.Covered, ok, m)
				}
			})
		}
	}
}

// Skew conformance parameters: the DESIGN.md §8 counterexample regime —
// ϕ large enough that a dominant item's self-inflated shard share can
// push it under the raw fold's global threshold.
const (
	winSkewEps = 0.05
	winSkewPhi = 0.2
	winSkewW   = 20_000
)

// skewStream materializes a single-dominant-item zipf regime: item 1 at
// rate r, a zipf-flavoured light tail (items 2–6, all far below the
// (ϕ−ε) exclusion line), and unique-id noise for the rest.
func skewStream(seed uint64, n int, r float64) []Item {
	weights := []float64{0, r, 0.050, 0.037, 0.025, 0.012, 0.006}
	return GeneratePlantedStream(seed, n, weights, 1<<20, 1<<30, OrderShuffled)
}

// feedChunks streams items through InsertBatch in moderate chunks, the
// way real producers do. Chunked calls also keep the global-arrival
// stamps batch-accurate, which is what the share measurement rides on.
func feedChunks(t *testing.T, sh *ShardedListHeavyHitters, items []Item) {
	t.Helper()
	const chunk = 1024
	for off := 0; off < len(items); off += chunk {
		end := min(off+chunk, len(items))
		if err := sh.InsertBatch(items[off:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// newSkewSharded builds the skew-regime solver; raw selects the legacy
// (pre-extrapolation) report fold.
func newSkewSharded(t *testing.T, shards int, raw bool) *ShardedListHeavyHitters {
	t.Helper()
	sh, err := NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{
			Eps: winSkewEps, Phi: winSkewPhi, Delta: 0.05,
			Universe: 1 << 31, Algorithm: AlgorithmSimple, Seed: 7,
		},
		Shards:          shards,
		Window:          winSkewW,
		RawShardWindows: raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	return sh
}

// TestWindowedShardedSkew: a dominant item inflates its own shard's
// traffic share, shrinking that shard's ⌈W/K⌉-item suffix relative to
// the global window — DESIGN.md §8 derives that the raw fold then needs
// r ≥ (ϕ−ε/2)(1+(K−1)r) to report it, which misses a 30%-of-traffic
// item at ϕ = 0.2, K = 4. The rate-extrapolated fold must report every
// item with window frequency ≥ ϕ·W regardless of K, exclude everything
// under (ϕ−ε)·M, survive a checkpoint round-trip bit-identically, and
// make the skew observable through WindowStats; the WithRawShardWindows
// twin must reproduce the legacy inclusion boundary, counterexample
// included.
func TestWindowedShardedSkew(t *testing.T) {
	for _, r := range []float64{0.3, 0.5} {
		for _, shards := range []int{4, 8} {
			t.Run(fmt.Sprintf("r=%.1f/K=%d", r, shards), func(t *testing.T) {
				stream := skewStream(307+uint64(shards)+uint64(r*10), 11*winSkewW/4, r)
				sh := newSkewSharded(t, shards, false)
				feedChunks(t, sh, stream)

				rep := sh.Report()
				m := sh.Len()
				if m < winSkewW || m > 2*winSkewW {
					t.Fatalf("covered mass %d implausible for W=%d", m, winSkewW)
				}
				window := suffixCounts(stream, winSkewW)
				got := make(map[Item]float64, len(rep))
				for _, it := range rep {
					got[it.Item] = it.F
				}
				// Inclusion: window frequency ≥ ϕ·W ⇒ reported — the one
				// guarantee the paper's (ε,ϕ) contract exists to give,
				// and exactly what the raw fold loses under skew.
				for _, x := range window.Items() {
					if float64(window.Freq(x)) >= winSkewPhi*float64(winSkewW) {
						if _, ok := got[x]; !ok {
							t.Errorf("item %d window frequency %d ≥ ϕW=%.0f missed by extrapolated fold",
								x, window.Freq(x), winSkewPhi*float64(winSkewW))
						}
					}
				}
				if _, ok := got[1]; !ok {
					t.Errorf("dominant item (rate %.1f) missing from extrapolated report", r)
				}
				// Exclusion: nothing under (ϕ−ε)·M is reported.
				for x := range got {
					if float64(window.Freq(x)) <= (winSkewPhi-winSkewEps)*float64(m) {
						t.Errorf("item %d window frequency %d ≤ (ϕ−ε)M=%.0f but reported",
							x, window.Freq(x), (winSkewPhi-winSkewEps)*float64(m))
					}
				}
				// The dominant item's estimate must be extrapolated back
				// to ≈ r·M, not the deflated per-shard count r·M/(Kc).
				if est := got[1]; est < 0.8*r*float64(m) || est > 1.2*r*float64(m) {
					t.Errorf("dominant estimate %.0f not ≈ rM = %.0f (extrapolation off)", est, r*float64(m))
				}

				// Observability: the skew shows up in WindowStats.
				st, ok := sh.WindowStats()
				if !ok || !st.Extrapolated {
					t.Fatalf("WindowStats ok=%v extrapolated=%v, want true/true", ok, st.Extrapolated)
				}
				if st.ShareSkew < 1.5 {
					t.Errorf("ShareSkew %.2f too small for a %.0f%%-of-traffic item", st.ShareSkew, 100*r)
				}
				if st.CoveredMin == 0 || st.CoveredMax < st.CoveredMin || st.CoveredMax > 2*st.CoveredMin {
					t.Errorf("per-shard coverage bounds implausible: min %d max %d", st.CoveredMin, st.CoveredMax)
				}

				// Checkpoint round-trip: the extrapolated report (and the
				// share accounting behind it) must restore bit-identically.
				blob, err := sh.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := Unmarshal(blob)
				if err != nil {
					t.Fatal(err)
				}
				defer restored.Close()
				if !reflect.DeepEqual(rep, restored.Report()) {
					t.Error("checkpoint round-trip changed the extrapolated report")
				}

				// The legacy twin reproduces the DESIGN §8 inclusion
				// boundary: raw per-shard counts clear the global
				// threshold only when r ≥ (ϕ−ε/2)(1+(K−1)r).
				raw := newSkewSharded(t, shards, true)
				feedChunks(t, raw, stream)
				_, rawHas := reportedSet(raw.Report())[1]
				wantLegacy := r >= (winSkewPhi-winSkewEps/2)*(1+float64(shards-1)*r)
				if rawHas != wantLegacy {
					t.Errorf("raw fold reported dominant = %v, DESIGN §8 bound predicts %v", rawHas, wantLegacy)
				}
				if st, ok := raw.WindowStats(); !ok || st.Extrapolated {
					t.Errorf("raw twin must report Extrapolated=false (ok=%v, got %v)", ok, st.Extrapolated)
				}
			})
		}
	}
}

// reportedSet indexes a report by item.
func reportedSet(rep []ItemEstimate) map[Item]float64 {
	out := make(map[Item]float64, len(rep))
	for _, r := range rep {
		out[r.Item] = r.F
	}
	return out
}

// TestWindowedShardedStaleShard: a shard whose ids stop arriving stops
// sliding (DESIGN.md §8) — under the raw fold its frozen buckets keep
// contributing at full weight, so a long-gone heavy item stays in the
// report indefinitely. The extrapolated fold prices the frozen shard's
// coverage against the global arrivals it actually spans and
// down-weights it away, while still reporting the live traffic's
// heavies; the skew is observable as a large ShareSkew.
func TestWindowedShardedStaleShard(t *testing.T) {
	const shards = 4
	sh := newSkewSharded(t, shards, false)
	raw := newSkewSharded(t, shards, true)

	// Phase 1: item 1 dominates at 60% — heavy enough that the raw fold
	// reports it even from its self-skewed shard.
	phase1 := skewStream(401, 3*winSkewW/2, 0.6)
	// Phase 2: traffic that never routes to item 1's shard, so that
	// shard freezes with item 1's buckets live. Item heavyB carries 30%
	// of the new regime; the background is unique light ids.
	shardA := sh.s.ShardOf(1)
	if raw.s.ShardOf(1) != shardA {
		t.Fatal("twins disagree on the partition — seeds diverged")
	}
	pick := func(start uint64) uint64 {
		for id := start; ; id++ {
			if sh.s.ShardOf(id) != shardA {
				return id
			}
		}
	}
	heavyB := pick(2 << 20)
	phase2 := make([]Item, 0, 5*winSkewW)
	next := uint64(3 << 20)
	for i := 0; len(phase2) < cap(phase2); i++ {
		if i%10 < 3 {
			phase2 = append(phase2, heavyB)
			continue
		}
		next = pick(next + 1)
		phase2 = append(phase2, next)
	}
	for _, eng := range []*ShardedListHeavyHitters{sh, raw} {
		feedChunks(t, eng, phase1)
		feedChunks(t, eng, phase2)
	}

	got := reportedSet(sh.Report())
	if f, ok := got[1]; ok {
		t.Errorf("frozen shard's stale item still reported with %.0f by the extrapolated fold", f)
	}
	if _, ok := got[heavyB]; !ok {
		t.Errorf("live heavy item %d (30%% of current traffic) missing from extrapolated report", heavyB)
	}
	// Regression expectation: the raw fold exhibits the §8 staleness bug
	// — the frozen buckets contribute at full weight and item 1 (absent
	// from the last 5·W global items) is still reported.
	if _, ok := reportedSet(raw.Report())[1]; !ok {
		t.Error("raw fold no longer reproduces the stale-shard bug the extrapolated fold fixes")
	}
	st, ok := sh.WindowStats()
	if !ok {
		t.Fatal("WindowStats unavailable")
	}
	if st.ShareSkew < 3 {
		t.Errorf("ShareSkew %.2f should expose the frozen shard (live shards carry ≈ K× its share)", st.ShareSkew)
	}
}

// TestWindowedEdgeCases: W=1, W larger than the stream, and tiny
// windows over heavy repetition.
func TestWindowedEdgeCases(t *testing.T) {
	base := Config{
		Eps: 0.1, Phi: 0.4, Delta: 0.05, Universe: 1 << 20, Seed: 3,
		Algorithm: AlgorithmSimple,
	}
	t.Run("W=1", func(t *testing.T) {
		hh, err := NewWindowedListHeavyHitters(WindowConfig{Config: base, Window: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 50; i++ {
			hh.Insert(i)
			if hh.Len() != 1 {
				t.Fatalf("W=1 covered %d", hh.Len())
			}
			rep := hh.Report()
			if len(rep) != 1 || rep[0].Item != i {
				t.Fatalf("W=1 report %v after inserting %d", rep, i)
			}
		}
	})
	t.Run("W>stream", func(t *testing.T) {
		hh, err := NewWindowedListHeavyHitters(WindowConfig{Config: base, Window: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			hh.Insert(uint64(i % 2)) // both ids at 0.5 ≥ ϕ
		}
		if hh.Len() != 1000 || hh.Total() != 1000 {
			t.Fatalf("covered/total %d/%d", hh.Len(), hh.Total())
		}
		rep := hh.Report()
		if len(rep) != 2 {
			t.Fatalf("want both heavy ids, got %v", rep)
		}
		if st := hh.WindowStats(); st.Retired != 0 {
			t.Fatalf("nothing should retire: %+v", st)
		}
	})
	t.Run("invalid-config", func(t *testing.T) {
		if _, err := NewWindowedListHeavyHitters(WindowConfig{Config: base}); err == nil {
			t.Fatal("no window mode must error")
		}
		if _, err := NewWindowedListHeavyHitters(WindowConfig{
			Config: base, Window: 10, WindowDuration: time.Second,
		}); err == nil {
			t.Fatal("both window modes must error")
		}
		if _, err := NewWindowedListHeavyHitters(WindowConfig{
			Config:         Config{Eps: 0.1, Phi: 0.4, Delta: 0.05, Universe: 1 << 20},
			WindowDuration: time.Second, // StreamLength 0: no per-window mass
		}); err == nil {
			t.Fatal("duration window without StreamLength must error")
		}
		if _, err := NewShardedListHeavyHitters(ShardedConfig{
			Config: base, Window: 10, WindowDuration: time.Second,
		}); err == nil {
			t.Fatal("sharded: both window modes must error")
		}
		// Overflow guards: a near-2⁶⁴ window would wrap the ⌈W/B⌉ and
		// per-shard-split arithmetic into a degenerate window.
		if _, err := NewWindowedListHeavyHitters(WindowConfig{
			Config: base, Window: ^uint64(0),
		}); err == nil {
			t.Fatal("absurd Window must error, not wrap")
		}
		if _, err := NewShardedListHeavyHitters(ShardedConfig{
			Config: base, Window: ^uint64(0), Shards: 2,
		}); err == nil {
			t.Fatal("sharded: absurd Window must error, not wrap")
		}
		if _, err := NewShardedListHeavyHitters(ShardedConfig{
			Config: base, WindowDuration: -time.Second, Shards: 2,
		}); err == nil {
			t.Fatal("sharded: negative WindowDuration must error, not silently unwindow")
		}
	})
}

// TestWindowedDuration drives a time-based window with an injected
// clock through the public API.
func TestWindowedDuration(t *testing.T) {
	now := time.Unix(2000, 0)
	hh, err := NewWindowedListHeavyHitters(WindowConfig{
		Config: Config{
			Eps: 0.1, Phi: 0.3, Delta: 0.05, Universe: 1 << 20,
			StreamLength: 1000, Seed: 5, Algorithm: AlgorithmSimple,
		},
		WindowDuration: 10 * time.Second,
		Clock:          func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		hh.Insert(1)
	}
	now = now.Add(4 * time.Second)
	for i := 0; i < 300; i++ {
		hh.Insert(2)
	}
	rep := hh.Report()
	if len(rep) != 2 {
		t.Fatalf("both regimes inside the window: %v", rep)
	}
	now = now.Add(8 * time.Second) // id 1 is now 12s old, id 2 8s
	rep = hh.Report()
	if len(rep) != 1 || rep[0].Item != 2 {
		t.Fatalf("id 1 should have aged out: %v", rep)
	}
	if st := hh.WindowStats(); st.Retired != 300 {
		t.Fatalf("expected 300 retired: %+v", st)
	}
}

// TestWindowedDurationRoundTrip checkpoints a duration window (real
// clock, window far longer than the test) and checks report identity.
func TestWindowedDurationRoundTrip(t *testing.T) {
	hh, err := NewWindowedListHeavyHitters(WindowConfig{
		Config: Config{
			Eps: 0.1, Phi: 0.3, Delta: 0.05, Universe: 1 << 20,
			StreamLength: 1000, Seed: 5, Algorithm: AlgorithmSimple,
		},
		WindowDuration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		hh.Insert(uint64(i % 3))
	}
	blob, err := hh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalWindowedListHeavyHitters(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hh.Report(), restored.Report()) {
		t.Error("duration-window round-trip changed the report")
	}
}

// TestWindowedMergeRejected: sliding-window states refuse the merge
// tier, wrapping ErrIncompatibleMerge, and leave the receiver usable.
func TestWindowedMergeRejected(t *testing.T) {
	mk := func() *ShardedListHeavyHitters {
		sh, err := NewShardedListHeavyHitters(ShardedConfig{
			Config: Config{
				Eps: 0.05, Phi: 0.2, Delta: 0.05, Universe: 1 << 20, Seed: 11,
				Algorithm: AlgorithmSimple, // exact at this tiny window scale
			},
			Shards: 2, Window: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	for i := 0; i < 500; i++ {
		a.Insert(uint64(i % 5))
		b.Insert(uint64(i % 5))
	}
	if err := a.MergeFrom(b); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("windowed MergeFrom: got %v, want ErrIncompatibleMerge", err)
	}
	// Windowed checkpoint into a non-windowed engine must also refuse.
	plain, err := NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{
			Eps: 0.05, Phi: 0.2, Delta: 0.05, StreamLength: 1000,
			Universe: 1 << 20, Seed: 11, Algorithm: AlgorithmSimple,
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	blob, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.MergeCheckpoint(blob); !errors.Is(err, ErrIncompatibleMerge) {
		t.Fatalf("windowed blob into plain engine: got %v, want ErrIncompatibleMerge", err)
	}
	if got := a.Report(); len(got) == 0 {
		t.Fatal("receiver must stay usable after a refused merge")
	}
}

// TestWindowShardedRace exercises report-during-retirement: concurrent
// producers keep rotating and retiring buckets while reports, stats,
// and checkpoints run. Run with -race.
func TestWindowShardedRace(t *testing.T) {
	sh, err := NewShardedListHeavyHitters(ShardedConfig{
		Config: Config{
			Eps: 0.05, Phi: 0.2, Delta: 0.05, Universe: 1 << 20, Seed: 13,
		},
		Shards: 4, Window: 500, WindowBuckets: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]Item, 256)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range batch {
					batch[j] = uint64((p*1000 + i + j) % 50)
				}
				if err := sh.InsertBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for i := 0; i < 20; i++ {
		sh.Report()
		if _, ok := sh.WindowStats(); !ok {
			t.Error("WindowStats must be available")
		}
		if _, err := sh.MarshalBinary(); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	sh.Report() // post-close barrier runs inline
}
